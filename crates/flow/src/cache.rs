//! The flow cache: sampled packets in, flow records out.
//!
//! Mirrors router behaviour: a keyed cache where entries are exported
//! when idle past the *inactive timeout*, when they live past the
//! *active timeout* (long flows are chopped so collectors see them
//! periodically), or when the trace ends.
//!
//! The cache is robust to the two impairments mirror ports actually
//! produce: *exact duplicates* (same timestamp, IP ID and length as the
//! packet just accounted to the flow) are suppressed and counted rather
//! than double-billed, and *reordered* packets merge into their flow
//! without splitting it — a packet older than the flow's recorded start
//! repairs `first` backwards. All of it is tallied in [`CacheStats`].
//!
//! Every merge/cut/duplicate decision — including the lateness verdict
//! — depends only on the packet and its own flow entry, never on a
//! cache-global clock; timed sweeps only expire entries that no future
//! packet could merge into (see [`FlowCache::sweep`]). Together these
//! make the exported record multiset identical whether the cache sees
//! the full sampled stream or any source-partitioned substream of it —
//! the invariant the sharded parallel pipeline rides on
//! (`ARCHITECTURE.md` §11).

use crate::record::{FlowKey, FlowRecord};
use crate::router::Direction;
use ah_net::packet::{PacketMeta, Transport};
use ah_net::time::{Dur, Ts};
use ah_obs::{Counter, Gauge, Histogram, Recorder};
use std::collections::HashMap;

/// Cisco-style default active timeout: a long-lived flow is cut and
/// exported every 30 minutes even while packets keep arriving.
pub const DEFAULT_ACTIVE_TIMEOUT: Dur = Dur::from_mins(30);
/// Cisco-style default inactive timeout: a flow idle for 15 seconds is
/// expired at the next sweep.
pub const DEFAULT_INACTIVE_TIMEOUT: Dur = Dur::from_secs(15);

/// Input-fate counters for one flow cache.
///
/// Conservation: `received == accepted + duplicates_suppressed`;
/// `late_accepted` and `first_repaired` are subsets of `accepted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Sampled packets offered via `observe`.
    pub received: u64,
    /// Packets accounted to a flow entry.
    pub accepted: u64,
    /// Exact duplicates of the previous packet in their flow, suppressed.
    pub duplicates_suppressed: u64,
    /// Accepted packets that arrived behind their own flow's newest
    /// timestamp.
    pub late_accepted: u64,
    /// Accepted packets that moved a flow's `first` timestamp earlier.
    pub first_repaired: u64,
}

impl CacheStats {
    /// Fold another cache's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.received += other.received;
        self.accepted += other.accepted;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.late_accepted += other.late_accepted;
        self.first_repaired += other.first_repaired;
    }

    /// The conservation identity.
    pub fn conserves(&self) -> bool {
        self.received == self.accepted + self.duplicates_suppressed
    }
}

/// Identity of the last packet accounted to a flow, used to recognize
/// exact mirror-port duplicates.
type PacketSig = (Ts, u16, u16);

struct Entry {
    first: Ts,
    last: Ts,
    packets: u64,
    bytes: u64,
    tcp_flags: u8,
    direction: Direction,
    last_sig: PacketSig,
}

/// A per-router flow cache.
pub struct FlowCache {
    router: u8,
    active_timeout: Dur,
    inactive_timeout: Dur,
    entries: HashMap<FlowKey, Entry>,
    exported: Vec<FlowRecord>,
    last_sweep: Ts,
    /// Newest packet timestamp seen so far. Content-neutral: drives only
    /// the implicit sweep schedule, never a per-flow decision.
    watermark: Ts,
    stats: CacheStats,
    /// Telemetry (inert until [`FlowCache::set_recorder`]).
    m_received: Counter,
    m_accepted: Counter,
    m_duplicates: Counter,
    m_exported: Counter,
    m_evicted: Counter,
    m_occupancy_hwm: Gauge,
    m_sweeps: Counter,
    m_sweep_us: Histogram,
}

impl FlowCache {
    /// A cache for `router` with the default timeouts.
    pub fn new(router: u8) -> FlowCache {
        FlowCache::with_timeouts(router, DEFAULT_ACTIVE_TIMEOUT, DEFAULT_INACTIVE_TIMEOUT)
    }

    /// A cache with explicit timeouts.
    pub fn with_timeouts(router: u8, active: Dur, inactive: Dur) -> FlowCache {
        FlowCache {
            router,
            active_timeout: active,
            inactive_timeout: inactive,
            entries: HashMap::new(),
            exported: Vec::new(),
            last_sweep: Ts::ZERO,
            watermark: Ts::ZERO,
            stats: CacheStats::default(),
            m_received: Counter::default(),
            m_accepted: Counter::default(),
            m_duplicates: Counter::default(),
            m_exported: Counter::default(),
            m_evicted: Counter::default(),
            m_occupancy_hwm: Gauge::default(),
            m_sweeps: Counter::default(),
            m_sweep_us: Histogram::default(),
        }
    }

    /// Attach live telemetry instruments (`ah_flow_cache_*`).
    ///
    /// Counters are shared across caches (they sum); the occupancy
    /// high-water mark is labeled by router id. Observation-only: flow
    /// accounting and export semantics are unchanged.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        let router = self.router.to_string();
        self.m_received = rec.counter("ah_flow_cache_packets_received_total");
        self.m_accepted = rec.counter("ah_flow_cache_packets_accepted_total");
        self.m_duplicates = rec.counter("ah_flow_cache_duplicates_suppressed_total");
        self.m_exported = rec.counter("ah_flow_cache_records_exported_total");
        self.m_evicted = rec.counter("ah_flow_cache_records_evicted_total");
        self.m_occupancy_hwm =
            rec.gauge_with("ah_flow_cache_active_flows_hwm", &[("router", &router)]);
        self.m_sweeps = rec.counter("ah_flow_cache_sweeps_total");
        self.m_sweep_us =
            rec.histogram("ah_flow_cache_sweep_duration_us", ah_obs::LATENCY_US_BUCKETS);
    }

    /// Input-fate counters (duplicate/reorder accounting).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Account one *sampled* packet. Exact duplicates of the previous
    /// packet in their flow are suppressed; reordered packets merge into
    /// their flow (repairing `first` if needed) instead of splitting it.
    ///
    /// The verdict depends only on the packet and its own flow entry —
    /// lateness is judged against the *entry's* newest timestamp — so
    /// the outcome is identical whether the full sampled stream or any
    /// source-partitioned substream is fed.
    pub fn observe(&mut self, pkt: &PacketMeta, direction: Direction) {
        self.watermark = self.watermark.max(pkt.ts);
        // Sweep on the watermark so a reordered packet cannot rewind or
        // re-trigger the sweep schedule; the sweep itself is content-
        // neutral, so the schedule never influences record contents.
        if self.watermark.since(self.last_sweep) >= self.inactive_timeout {
            self.sweep(self.watermark);
        }
        self.stats.received += 1;
        self.m_received.inc();
        let key = FlowKey::of(pkt);
        let flags = match pkt.transport {
            Transport::Tcp { flags, .. } => flags.0,
            _ => 0,
        };
        let sig: PacketSig = (pkt.ts, pkt.ip_id, pkt.wire_len);
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if e.get().last_sig == sig && e.get().direction == direction {
                    self.stats.duplicates_suppressed += 1;
                    self.m_duplicates.inc();
                    return;
                }
                self.stats.accepted += 1;
                self.m_accepted.inc();
                if pkt.ts < e.get().last {
                    self.stats.late_accepted += 1;
                }
                let needs_cut = {
                    let en = e.get();
                    pkt.ts.since(en.last) > self.inactive_timeout
                        || pkt.ts.since(en.first) > self.active_timeout
                        || en.direction != direction
                };
                if needs_cut {
                    let (k, en) = (key, e.remove());
                    self.exported.push(Self::export(self.router, k, en));
                    self.m_exported.inc();
                    self.entries.insert(key, Self::fresh(pkt, flags, direction, sig));
                } else {
                    let en = e.get_mut();
                    if pkt.ts < en.first {
                        en.first = pkt.ts;
                        self.stats.first_repaired += 1;
                    }
                    en.last = en.last.max(pkt.ts);
                    en.packets += 1;
                    en.bytes += u64::from(pkt.wire_len);
                    en.tcp_flags |= flags;
                    en.last_sig = sig;
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.stats.accepted += 1;
                self.m_accepted.inc();
                v.insert(Self::fresh(pkt, flags, direction, sig));
            }
        }
        self.m_occupancy_hwm.set_max(self.entries.len() as i64);
    }

    fn fresh(pkt: &PacketMeta, flags: u8, direction: Direction, sig: PacketSig) -> Entry {
        Entry {
            first: pkt.ts,
            last: pkt.ts,
            packets: 1,
            bytes: u64::from(pkt.wire_len),
            tcp_flags: flags,
            direction,
            last_sig: sig,
        }
    }

    fn export(router: u8, key: FlowKey, e: Entry) -> FlowRecord {
        FlowRecord {
            key,
            router,
            direction: e.direction,
            first: e.first,
            last: e.last,
            packets: e.packets,
            bytes: e.bytes,
            tcp_flags: e.tcp_flags,
        }
    }

    /// Export all entries idle past the inactive timeout — plus one
    /// extra inactive timeout of slack — as of `now`.
    ///
    /// The slack makes timed expiry *content-neutral*: an entry is only
    /// exported once every packet that could still reach it (per-flow
    /// disorder bounded by the inactive timeout) would trigger the
    /// per-packet inactive cut and start a fresh entry anyway. Sweeping
    /// on different schedules therefore changes when records are
    /// exported, never their contents. Active-timeout chops are applied
    /// per-packet in [`FlowCache::observe`] (a pure per-flow decision),
    /// not here, for the same reason.
    pub fn sweep(&mut self, now: Ts) {
        self.m_sweeps.inc();
        let _span = self.m_sweep_us.time();
        self.last_sweep = now;
        let expire_after = Dur(self.inactive_timeout.0 * 2);
        let expired: Vec<FlowKey> = self
            .entries
            .iter()
            .filter(|(_, e)| now.since(e.last) > expire_after)
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            if let Some(e) = self.entries.remove(&k) {
                self.exported.push(Self::export(self.router, k, e));
                self.m_exported.inc();
                self.m_evicted.inc();
            }
        }
    }

    /// Drain exported records.
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.exported)
    }

    /// Export everything remaining (end of trace) and drain.
    pub fn flush(&mut self) -> Vec<FlowRecord> {
        let router = self.router;
        let mut out = std::mem::take(&mut self.exported);
        for (k, e) in self.entries.drain() {
            out.push(Self::export(router, k, e));
            self.m_exported.inc();
        }
        out
    }

    /// Number of in-cache flows.
    pub fn active_flows(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::ipv4::Ipv4Addr4;

    const S: Ipv4Addr4 = Ipv4Addr4::new(203, 0, 113, 1);
    const D: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 1);

    fn pkt(ts_s: u64, dport: u16) -> PacketMeta {
        PacketMeta::tcp_syn(Ts::from_secs(ts_s), S, D, 40000, dport)
    }

    #[test]
    fn packets_aggregate_into_one_flow() {
        let mut c = FlowCache::new(1);
        for t in 0..5 {
            c.observe(&pkt(t, 80), Direction::Ingress);
        }
        let recs = c.flush();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.packets, 5);
        assert_eq!(r.bytes, 200);
        assert_eq!(r.first, Ts::from_secs(0));
        assert_eq!(r.last, Ts::from_secs(4));
        assert_eq!(r.router, 1);
        assert_eq!(r.tcp_flags, 0x02);
    }

    #[test]
    fn inactive_timeout_splits() {
        let mut c = FlowCache::new(1);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.observe(&pkt(16, 80), Direction::Ingress); // > 15s idle
        let recs = c.flush();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn active_timeout_chops_long_flows() {
        let mut c = FlowCache::new(1);
        // A packet every 10s for 35 minutes: inactive never fires, active does.
        for t in (0..2100).step_by(10) {
            c.observe(&pkt(t, 80), Direction::Ingress);
        }
        let recs = c.flush();
        assert!(recs.len() >= 2, "long flow was not chopped: {}", recs.len());
        let total: u64 = recs.iter().map(|r| r.packets).sum();
        assert_eq!(total, 210, "packets must be conserved across chops");
    }

    #[test]
    fn distinct_tuples_are_distinct_flows() {
        let mut c = FlowCache::new(2);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.observe(&pkt(0, 443), Direction::Ingress);
        assert_eq!(c.active_flows(), 2);
        assert_eq!(c.flush().len(), 2);
    }

    #[test]
    fn direction_change_splits_flow() {
        // Same 5-tuple seen in both directions (rare, but must not merge).
        let mut c = FlowCache::new(1);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.observe(&pkt(1, 80), Direction::Egress);
        let recs = c.flush();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn sweep_exports_idle_flows() {
        let mut c = FlowCache::new(1);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.sweep(Ts::from_secs(100));
        assert_eq!(c.active_flows(), 0);
        assert_eq!(c.drain().len(), 1);
    }

    #[test]
    fn exact_duplicates_are_suppressed() {
        let mut c = FlowCache::new(1);
        let p = pkt(1, 80);
        c.observe(&p, Direction::Ingress);
        c.observe(&p, Direction::Ingress); // mirror-port duplicate
        c.observe(&p, Direction::Ingress);
        let s = c.stats();
        assert_eq!(s.received, 3);
        assert_eq!(s.accepted, 1);
        assert_eq!(s.duplicates_suppressed, 2);
        assert!(s.conserves());
        let recs = c.flush();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].packets, 1, "duplicates must not be double-billed");
        assert_eq!(recs[0].bytes, 40);
    }

    #[test]
    fn retransmission_with_new_ip_id_is_not_a_duplicate() {
        let mut c = FlowCache::new(1);
        let p1 = pkt(1, 80);
        let mut p2 = pkt(1, 80);
        p2.ip_id = p1.ip_id.wrapping_add(1); // genuine retransmission
        c.observe(&p1, Direction::Ingress);
        c.observe(&p2, Direction::Ingress);
        assert_eq!(c.stats().duplicates_suppressed, 0);
        assert_eq!(c.flush()[0].packets, 2);
    }

    #[test]
    fn reordered_packet_merges_and_repairs_first() {
        let mut c = FlowCache::new(1);
        c.observe(&pkt(10, 80), Direction::Ingress);
        c.observe(&pkt(5, 80), Direction::Ingress); // arrives late
        let s = c.stats();
        assert_eq!(s.late_accepted, 1);
        assert_eq!(s.first_repaired, 1);
        let recs = c.flush();
        assert_eq!(recs.len(), 1, "reordering must not split the flow");
        assert_eq!(recs[0].first, Ts::from_secs(5));
        assert_eq!(recs[0].last, Ts::from_secs(10));
        assert_eq!(recs[0].packets, 2);
    }

    #[test]
    fn stats_conserve_under_mixed_input() {
        let mut c = FlowCache::new(1);
        let p = pkt(0, 80);
        c.observe(&p, Direction::Ingress);
        c.observe(&p, Direction::Ingress); // duplicate
        c.observe(&pkt(3, 443), Direction::Ingress);
        c.observe(&pkt(1, 80), Direction::Ingress); // late
        c.observe(&pkt(30, 80), Direction::Ingress); // inactive split
        let s = c.stats();
        assert_eq!(s.received, 5);
        assert!(s.conserves());
        let total: u64 = c.flush().iter().map(|r| r.packets).sum();
        assert_eq!(total, s.accepted, "every accepted packet lands in a record");
    }

    #[test]
    fn tcp_flags_accumulate() {
        let mut c = FlowCache::new(1);
        let mut p1 = pkt(0, 80);
        let mut p2 = pkt(1, 80);
        if let Transport::Tcp { ref mut flags, .. } = p1.transport {
            *flags = ah_net::tcp::TcpFlags::SYN;
        }
        if let Transport::Tcp { ref mut flags, .. } = p2.transport {
            *flags = ah_net::tcp::TcpFlags::ACK;
        }
        c.observe(&p1, Direction::Ingress);
        c.observe(&p2, Direction::Ingress);
        let recs = c.flush();
        assert_eq!(recs[0].tcp_flags, 0x12);
    }
}
