//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variant.

use crate::ipv4::Ipv4Addr4;

/// Incremental one's-complement sum. Feed it byte slices, then [`Sum16::finish`].
///
/// The accumulator is 32 bits wide and folded at the end, which is enough
/// for any packet shorter than ~64 KiB fed in any number of chunks.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum16 {
    acc: u32,
    /// True when an odd byte is pending from the previous chunk.
    pending: Option<u8>,
}

impl Sum16 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a chunk of bytes. Chunks may have odd lengths; byte alignment
    /// is tracked across chunks exactly as if they were contiguous.
    pub fn add(&mut self, mut data: &[u8]) {
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.acc += u32::from(u16::from_be_bytes([hi, lo]));
                data = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Add a 16-bit word in host order (it is summed as big-endian).
    pub fn add_u16(&mut self, w: u16) {
        self.add(&w.to_be_bytes());
    }

    /// Fold and complement, producing the value to place in a checksum field.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.acc += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut acc = self.acc;
        while acc >> 16 != 0 {
            acc = (acc & 0xffff) + (acc >> 16);
        }
        !(acc as u16)
    }
}

/// Checksum of a single contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut s = Sum16::new();
    s.add(data);
    s.finish()
}

/// Verify a buffer whose checksum field is already in place: the sum over
/// the whole buffer must be zero (i.e. `finish()` returns 0).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// Pseudo-header sum used by TCP and UDP over IPv4 (RFC 793 / RFC 768).
pub fn pseudo_header(src: Ipv4Addr4, dst: Ipv4Addr4, protocol: u8, l4_len: u16) -> Sum16 {
    let mut s = Sum16::new();
    s.add(&src.octets());
    s.add(&dst.octets());
    s.add(&[0, protocol]);
    s.add_u16(l4_len);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1071 worked example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
    // before complement.
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn end_around_carry_folds_into_low_word() {
        // 0xffff + 0x0001 overflows into bit 16; RFC 1071 folds the
        // carry back around: acc 0x10000 -> 0x0001, complement 0xfffe.
        assert_eq!(checksum(&[0xff, 0xff, 0x00, 0x01]), 0xfffe);
        // Double all-ones word: acc 0x1fffe folds to 0xffff, complement 0.
        assert_eq!(checksum(&[0xff, 0xff, 0xff, 0xff]), 0x0000);
    }

    #[test]
    fn odd_length_is_zero_padded() {
        // Checksum of [ab] equals checksum of [ab 00].
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn chunking_does_not_change_result() {
        let data: Vec<u8> = (0u16..999).map(|i| (i % 251) as u8).collect();
        let whole = checksum(&data);
        // Feed in pathological chunk sizes, including odd splits.
        for step in [1usize, 2, 3, 7, 13, 64] {
            let mut s = Sum16::new();
            for c in data.chunks(step) {
                s.add(c);
            }
            assert_eq!(s.finish(), whole, "chunk size {step}");
        }
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06];
        // Place a correct checksum in the last two bytes.
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[3] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn all_zero_has_ffff_checksum() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let src = Ipv4Addr4::new(10, 0, 0, 1);
        let dst = Ipv4Addr4::new(10, 0, 0, 2);
        let mut s = pseudo_header(src, dst, 6, 20);
        s.add(&[0u8; 20]);
        let via_helper = s.finish();

        let mut manual = Vec::new();
        manual.extend_from_slice(&src.octets());
        manual.extend_from_slice(&dst.octets());
        manual.extend_from_slice(&[0, 6]);
        manual.extend_from_slice(&20u16.to_be_bytes());
        manual.extend_from_slice(&[0u8; 20]);
        assert_eq!(via_helper, checksum(&manual));
    }
}
