//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! the event idle-timeout, the flow sampling rate, and the dispersion
//! threshold. Each parameterization is timed by Criterion; the *output*
//! effects (event splitting, estimate bias, population size) are printed
//! once per run so the ablation doubles as a measurement.

use ah_core::defs::{Definition, Thresholds};
use ah_core::detector::{Detector, DetectorConfig};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::{Dur, Ts};
use ah_telescope::capture::Telescope;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A slow scanner whose darknet hits arrive ~2 minutes apart: short
/// timeouts shred it into many events.
fn slow_scan(n: u32) -> Vec<PacketMeta> {
    (0..n)
        .map(|i| {
            PacketMeta::tcp_syn(
                Ts::from_secs(u64::from(i) * 117),
                Ipv4Addr4::new(100, 64, 0, 1),
                Ipv4Addr4(0x1400_0000 + (i * 37) % 16_384),
                40_000,
                23,
            )
        })
        .collect()
}

fn ablate_timeout(c: &mut Criterion) {
    let pkts = slow_scan(2000);
    let mut g = c.benchmark_group("ablation_timeout");
    for mins in [1u64, 5, 10, 30] {
        // Print the splitting effect once, outside the timing loop.
        let mut t = Telescope::new("20.0.0.0/18".parse().unwrap(), Dur::from_mins(mins));
        for p in &pkts {
            t.observe(p);
        }
        let events = t.flush().len();
        eprintln!("[ablation] timeout={mins}min -> {events} events from one 2k-probe slow scan");
        g.bench_with_input(BenchmarkId::from_parameter(mins), &mins, |b, &mins| {
            b.iter(|| {
                let mut t = Telescope::new("20.0.0.0/18".parse().unwrap(), Dur::from_mins(mins));
                for p in &pkts {
                    t.observe(p);
                }
                black_box(t.flush().len())
            })
        });
    }
    g.finish();
}

fn ablate_sampling(c: &mut Criterion) {
    // A flow of 10,000 packets, sampled at different rates: the inverse
    // estimator's error grows with the rate.
    let mut g = c.benchmark_group("ablation_sampling");
    for rate in [1u64, 10, 100, 1000] {
        let mut s = ah_flow::sampler::Sampler::new(rate, 3);
        let mut sampled = 0u64;
        for _ in 0..10_000 {
            if s.sample() {
                sampled += 1;
            }
        }
        let est = s.estimate(sampled);
        eprintln!(
            "[ablation] sampling 1:{rate} -> estimate {est} of 10000 true ({}% error)",
            (est as i64 - 10_000).abs() * 100 / 10_000
        );
        g.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            b.iter(|| {
                let mut s = ah_flow::sampler::Sampler::new(rate, 0);
                let mut n = 0u64;
                for _ in 0..10_000 {
                    if s.sample() {
                        n += 1;
                    }
                }
                black_box(s.estimate(n))
            })
        });
    }
    g.finish();
}

fn ablate_dispersion(c: &mut Criterion) {
    use ah_net::packet::ScanClass;
    use ah_telescope::event::{DarknetEvent, EventKey, ToolCounts};
    // Events with geometrically-spread dispersion.
    let events: Vec<DarknetEvent> = (0..20_000u32)
        .map(|i| DarknetEvent {
            key: EventKey {
                src: Ipv4Addr4(0x6500_0000 + i),
                dst_port: 23,
                class: ScanClass::TcpSyn,
            },
            start: Ts::from_secs(u64::from(i)),
            end: Ts::from_secs(u64::from(i) + 10),
            packets: 10,
            bytes: 400,
            unique_dsts: 1 + (i * 7919) % 16_384,
            dark_size: 16_384,
            tools: ToolCounts::default(),
        })
        .collect();
    let mut g = c.benchmark_group("ablation_dispersion");
    g.sample_size(20);
    for pct in [5u32, 10, 20, 50] {
        let cfg = DetectorConfig {
            thresholds: Thresholds {
                dispersion_fraction: f64::from(pct) / 100.0,
                ..Thresholds::default()
            },
            dark_size: 16_384,
        };
        let mut d = Detector::new(cfg);
        d.ingest_all(&events);
        let n = d.finalize().hitters(Definition::AddressDispersion).len();
        eprintln!("[ablation] dispersion>={pct}% -> {n} hitters of 20000 sources");
        g.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, _| {
            b.iter(|| {
                let mut d = Detector::new(cfg);
                d.ingest_all(&events);
                black_box(d.finalize().hitters(Definition::AddressDispersion).len())
            })
        });
    }
    g.finish();
}

fn ablate_counting(c: &mut Criterion) {
    use ah_telescope::dstset::DstSet;
    use ah_telescope::hll::HyperLogLog;
    // Exact adaptive set vs HLL sketch for per-event dispersion counting:
    // time and (printed once) accuracy + memory at darknet scale.
    let dark = 16_384u32;
    let ids: Vec<u32> = (0..40_000u32).map(|i| (i.wrapping_mul(2_654_435_761)) % dark).collect();
    {
        let mut exact = DstSet::new(dark);
        let mut sketch: HyperLogLog = HyperLogLog::new();
        for &id in &ids {
            exact.insert(id);
            sketch.insert(u64::from(id));
        }
        eprintln!(
            "[ablation] distinct-count: exact={} sketch={:.0} (repr {}, sketch {} B)",
            exact.count(),
            sketch.estimate(),
            exact.repr_name(),
            sketch.memory_bytes()
        );
    }
    let mut g = c.benchmark_group("ablation_counting");
    g.bench_function("exact_dstset", |b| {
        b.iter(|| {
            let mut s = DstSet::new(dark);
            for &id in &ids {
                s.insert(id);
            }
            black_box(s.count())
        })
    });
    g.bench_function("hll_sketch", |b| {
        b.iter(|| {
            let mut s: HyperLogLog = HyperLogLog::new();
            for &id in &ids {
                s.insert(u64::from(id));
            }
            black_box(s.estimate())
        })
    });
    g.finish();
}

criterion_group!(benches, ablate_timeout, ablate_sampling, ablate_dispersion, ablate_counting);
criterion_main!(benches);
