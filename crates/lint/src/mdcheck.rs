//! First-party markdown link and anchor checker (`doc-link`).
//!
//! The repo's documentation layer (README, ARCHITECTURE, DESIGN,
//! BENCH, …) cross-references itself heavily; a renamed file or
//! section silently strands those links because nothing compiles
//! markdown. This pass walks every `*.md` in the workspace and checks,
//! for each inline link or reference definition:
//!
//! * **relative paths** resolve to an existing file or directory
//!   (external `http(s)://` and `mailto:` targets are skipped — CI
//!   must not depend on the network);
//! * **`#fragment` anchors** — same-file or into another markdown
//!   file — match a heading there, using GitHub's slugging rules
//!   (lowercase, punctuation stripped, spaces to hyphens, `-N`
//!   suffixes for duplicates).
//!
//! Fenced code blocks and inline code spans are excluded, so shell
//! snippets and `[i]` indexing in example code are never parsed as
//! links. Like the Rust-side lints this is deliberately token-level
//! and dependency-free: a small scanner, not a markdown parser.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lints::Diagnostic;

/// Every `*.md` under `root`, recursively, skipping VCS metadata and
/// build output (`.git`, `target`, any hidden directory).
pub fn markdown_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_md(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_md(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect_md(&path, out)?;
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
    Ok(())
}

/// One extracted link: line number and raw destination.
struct Link {
    line: u32,
    dest: String,
}

/// GitHub-style anchor slug for a heading text: lowercase, markdown
/// emphasis/code markers dropped, remaining punctuation stripped,
/// spaces become hyphens.
fn slug(heading: &str) -> String {
    let mut s = String::with_capacity(heading.len());
    for c in heading.trim().chars() {
        match c {
            'A'..='Z' => s.push(c.to_ascii_lowercase()),
            'a'..='z' | '0'..='9' | '-' | '_' => s.push(c),
            ' ' => s.push('-'),
            _ => {}
        }
    }
    s
}

/// Headings of one markdown source, as the set of anchor slugs GitHub
/// would generate (duplicate headings get `-1`, `-2`, … suffixes).
fn anchors(src: &str) -> Vec<String> {
    let mut seen: HashMap<String, u32> = HashMap::new();
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in src.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !trimmed.starts_with('#') {
            continue;
        }
        let text = trimmed.trim_start_matches('#');
        if !text.starts_with(' ') && !text.is_empty() {
            continue; // "#111" etc. is not a heading
        }
        let base = slug(text);
        let n = seen.entry(base.clone()).or_insert(0);
        out.push(if *n == 0 { base.clone() } else { format!("{base}-{n}") });
        *n += 1;
    }
    out
}

/// Inline `[text](dest)` links and `[ref]: dest` reference definitions
/// of one markdown source, fenced blocks and inline code excluded.
fn links(src: &str) -> Vec<Link> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (i, line) in src.lines().enumerate() {
        let lineno = i as u32 + 1;
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Blank out inline code spans so `[idx](…)`-shaped code is
        // invisible to the link scanner (column positions preserved).
        let cooked: String = {
            let mut in_code = false;
            line.chars()
                .map(|c| match c {
                    '`' => {
                        in_code = !in_code;
                        '`'
                    }
                    _ if in_code => ' ',
                    _ => c,
                })
                .collect()
        };
        // Reference definition: `[name]: dest`
        if let Some(rest) = cooked.trim_start().strip_prefix('[') {
            if let Some((_, after)) = rest.split_once("]:") {
                let dest = after.split_whitespace().next().unwrap_or("");
                if !dest.is_empty() {
                    out.push(Link { line: lineno, dest: dest.to_string() });
                    continue;
                }
            }
        }
        // Inline links: every `](dest)` with a matching `[` before it.
        let bytes = cooked.as_bytes();
        let mut j = 0;
        while j + 1 < bytes.len() {
            if bytes[j] == b']' && bytes[j + 1] == b'(' {
                // Walk back for the matching unescaped `[`.
                let mut depth = 1i32;
                let mut k = j;
                let mut opened = false;
                while k > 0 {
                    k -= 1;
                    match bytes[k] {
                        b']' => depth += 1,
                        b'[' => {
                            depth -= 1;
                            if depth == 0 {
                                opened = k == 0 || bytes[k - 1] != b'\\';
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if opened {
                    if let Some(close) = cooked[j + 2..].find(')') {
                        let dest = &cooked[j + 2..j + 2 + close];
                        // Strip an optional `"title"` part.
                        let dest = dest.split_whitespace().next().unwrap_or("");
                        if !dest.is_empty() {
                            out.push(Link { line: lineno, dest: dest.to_string() });
                        }
                        j += 2 + close;
                        continue;
                    }
                }
            }
            j += 1;
        }
    }
    out
}

/// Check every markdown file under `root`; returns the findings plus
/// the number of files and links scanned.
pub fn check_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize, usize), String> {
    let files = markdown_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diags = Vec::new();
    let mut total_links = 0usize;
    for path in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let display = path.strip_prefix(root).unwrap_or(path).display().to_string();
        let own_anchors = anchors(&src);
        for link in links(&src) {
            total_links += 1;
            let dest = link.dest.as_str();
            if dest.starts_with("http://")
                || dest.starts_with("https://")
                || dest.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, frag) = match dest.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (dest, None),
            };
            let (target_path, target_anchors): (String, Option<Vec<String>>) = if path_part
                .is_empty()
            {
                (display.clone(), Some(own_anchors.clone()))
            } else {
                let resolved = if let Some(rel) = path_part.strip_prefix('/') {
                    root.join(rel)
                } else {
                    path.parent().unwrap_or(root).join(path_part)
                };
                if !resolved.exists() {
                    diags.push(Diagnostic {
                        file: display.clone(),
                        line: link.line,
                        lint: "doc-link",
                        message: format!("broken link: `{dest}` — `{path_part}` does not exist"),
                    });
                    continue;
                }
                let target_anchors =
                    if frag.is_some() && resolved.extension().is_some_and(|e| e == "md") {
                        let tsrc = fs::read_to_string(&resolved)
                            .map_err(|e| format!("reading {}: {e}", resolved.display()))?;
                        Some(anchors(&tsrc))
                    } else {
                        None
                    };
                (path_part.to_string(), target_anchors)
            };
            if let (Some(frag), Some(anchor_set)) = (frag, target_anchors) {
                let want = frag.to_ascii_lowercase();
                if !anchor_set.contains(&want) {
                    diags.push(Diagnostic {
                        file: display.clone(),
                        line: link.line,
                        lint: "doc-link",
                        message: format!(
                            "broken anchor: `#{frag}` matches no heading in `{target_path}`"
                        ),
                    });
                }
            }
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((diags, files.len(), total_links))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_follow_github_rules() {
        assert_eq!(slug(" Sharded determinism"), "sharded-determinism");
        assert_eq!(slug(" §5. The `RingSync` facade"), "5-the-ringsync-facade");
        assert_eq!(slug(" WAL resume/replay"), "wal-resumereplay");
    }

    #[test]
    fn duplicate_headings_get_numeric_suffixes() {
        let a = anchors("# One\n## Two\n## Two\n");
        assert_eq!(a, vec!["one", "two", "two-1"]);
    }

    #[test]
    fn fenced_code_is_not_scanned() {
        let src = "# T\n```\n[not](a-link.md)\n# not a heading\n```\n[real](#t)\n";
        assert_eq!(links(src).len(), 1);
        assert_eq!(anchors(src), vec!["t"]);
    }

    #[test]
    fn inline_code_spans_hide_bracket_pairs() {
        let src = "see `arr[0](x)` and [ok](#h)\n# H\n";
        let ls = links(src);
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].dest, "#h");
    }

    #[test]
    fn reference_definitions_are_links_too() {
        let ls = links("[spec]: ./MISSING.md\n");
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].dest, "./MISSING.md");
    }
}
