//! Honeypot cross-validation: what does a GreyNoise-style distributed
//! sensor fleet say about the hitters the telescope detected?
//!
//! Runs telescope + honeypot over the same simulated traffic, removes
//! acknowledged research scanners, and prints the behavioral tags and
//! benign/malicious/unknown classification of the remainder — the
//! analysis behind the paper's Table 9 and Figure 6.
//!
//! ```sh
//! cargo run --release --example honeypot_audit
//! ```

use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::core::validate::{
    acked_validation, daily_gn_overlap, gn_breakdown, gn_tag_table,
};
use aggressive_scanners::pipeline::{self, RunOptions};
use aggressive_scanners::simnet::scenario::{BenignLevel, ScenarioConfig, Year};

fn main() {
    let days = 7;
    println!("simulating {days} days with a distributed honeypot fleet...");
    let mut cfg = ScenarioConfig::darknet(Year::Y2022, days, 2023);
    cfg.benign = BenignLevel::Off;
    let run = pipeline::run(cfg, RunOptions { greynoise: true, ..RunOptions::darknet_only() });

    let entries = run.gn_entries.as_ref().expect("honeypot entries");
    let seen = run.gn_seen.as_ref().expect("honeypot seen set");
    println!("honeypot observed {} distinct sources", entries.len());

    let def = Definition::AddressDispersion;
    let hitters = run.report.hitters(def);
    let acked = run.world.acked_list(8);
    let rdns = run.world.rdns(64);
    let v = acked_validation(&run.report, def, &acked, &rdns);
    println!(
        "{} hitters total; {} acknowledged research scanners removed",
        hitters.len(),
        v.total_ips
    );

    let overlap = daily_gn_overlap(&run.report, def, seen, 0..days);
    println!("daily hitters also present at the honeypot: {:.1}% (paper: 99.3%)", 100.0 * overlap);

    let b = gn_breakdown(hitters, entries, &v.ips);
    println!();
    println!("classification of the non-acknowledged hitters:");
    println!("  malicious: {:>4}", b.malicious);
    println!("  unknown:   {:>4}", b.unknown);
    println!("  benign:    {:>4}", b.benign);
    println!("  not in GN: {:>4}", b.absent);

    println!();
    println!("top behavioral tags:");
    for (i, (tag, n)) in gn_tag_table(hitters, entries, &v.ips, 15).iter().enumerate() {
        println!("  #{:<3} {:<36} {n}", i + 1, tag);
    }
}
