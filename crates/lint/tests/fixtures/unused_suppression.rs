//! Fixture: unused-suppression — an allow (line or file scope) whose
//! lint would not have fired is itself a finding, so stale audit
//! comments cannot accumulate after the code they excused is fixed.

// ah-lint: allow-file(metric-name, reason = "fixture: nothing registers a metric here")
//~^ unused-suppression

pub fn covered(v: Option<u32>) -> u32 {
    // ah-lint: allow(panic-path, reason = "fixture: silences the unwrap below")
    v.unwrap()
}

pub fn stale(v: Option<u32>) -> u32 {
    // ah-lint: allow(panic-path, reason = "fixture: the unwrap it excused is gone")
    //~^ unused-suppression
    v.unwrap_or(0)
}

/// A used file-scope suppression stays silent: the atomic-ordering
/// finding below fires and is absorbed by this allow-file.
// ah-lint: allow-file(atomic-ordering, reason = "fixture: absorbed by the load below")
pub fn ordering_site() -> &'static str {
    // The bare ident is enough for the token-level pass.
    "Relaxed"
}

pub fn ordering_code(x: &std::sync::atomic::AtomicU32) -> u32 {
    x.load(std::sync::atomic::Ordering::Relaxed)
}
