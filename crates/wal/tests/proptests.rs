//! Property-based tests for the WAL frame codec, the record codec, and
//! the recovery scanner.
//!
//! The durability contract rests on three totality claims, each checked
//! here against adversarial inputs rather than hand-picked fixtures:
//!
//! 1. framing is a bijection on (seq, payload) — every encode parses
//!    back to exactly what went in;
//! 2. no single-bit flip and no truncation of a valid frame is ever
//!    accepted as that frame (CRC32 detects all single-bit errors);
//! 3. recovery is idempotent — after one repair pass over a damaged
//!    log, a second pass finds nothing to do and rewrites nothing.

use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::Ts;
use ah_obs::Recorder;
use ah_wal::frame::{append_frame, check_frame, FrameCheck, FRAME_HEADER_BYTES};
use ah_wal::record::WalRecord;
use ah_wal::{recover, RunSeal, WalWriter, WalWriterConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr4> {
    any::<u32>().prop_map(Ipv4Addr4::from_u32)
}

/// An arbitrary delivered packet of each transport shape.
fn arb_packet() -> impl Strategy<Value = PacketMeta> {
    (arb_addr(), arb_addr(), any::<u16>(), any::<u16>(), any::<u16>(), any::<u64>(), 0u8..3)
        .prop_map(|(src, dst, sp, dp, ip_id, ts, kind)| {
            let ts = Ts::from_micros(ts >> 16);
            let mut m = match kind {
                0 => PacketMeta::tcp_syn(ts, src, dst, sp, dp),
                1 => PacketMeta::udp_probe(ts, src, dst, sp, dp),
                _ => PacketMeta::icmp_echo(ts, src, dst),
            };
            m.ip_id = ip_id;
            m
        })
}

/// A fresh on-disk log directory, unique across cases and processes.
fn case_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ah-wal-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Segment + index files as (name, bytes), for byte-level comparison.
fn dir_snapshot(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("wal dir readable")
        .map(|e| {
            let e = e.expect("dir entry");
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).expect("read"))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

/// Build a committed log of `packets` and return its single segment path.
fn write_log(dir: &Path, packets: &[PacketMeta], sealed: bool) -> PathBuf {
    let rec = Recorder::new();
    let mut w = WalWriter::create(dir, WalWriterConfig::default(), &rec).expect("create");
    for p in packets {
        w.append(&WalRecord::Packet(*p)).expect("append");
    }
    if sealed {
        w.seal(RunSeal {
            generated: packets.len() as u64,
            delivered: packets.len() as u64,
            packet_hash: 0,
            injector: None,
        })
        .expect("seal");
    } else {
        w.commit().expect("commit");
    }
    let segs = ah_wal::segment_paths(dir).expect("list");
    assert_eq!(segs.len(), 1, "small log stays in one segment");
    segs[0].1.clone()
}

proptest! {
    /// Framing round-trips any (seq, payload) pair, byte-exactly.
    #[test]
    fn frame_roundtrip_identity(
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..1024),
    ) {
        let mut buf = Vec::new();
        append_frame(&mut buf, seq, &payload);
        prop_assert_eq!(buf.len(), FRAME_HEADER_BYTES + payload.len());
        match check_frame(&buf, seq) {
            FrameCheck::Frame { payload: got, consumed } => {
                prop_assert_eq!(got, &payload[..]);
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "valid frame rejected as {other:?}"),
        }
        // The same bytes under any other expected sequence number are
        // corrupt — frames cannot be replayed at a different position.
        match check_frame(&buf, seq.wrapping_add(1)) {
            FrameCheck::Corrupt => {}
            other => prop_assert!(false, "mis-sequenced frame accepted as {other:?}"),
        }
    }

    /// Flipping ANY single bit of a valid frame makes it unacceptable.
    #[test]
    fn any_single_bit_flip_is_rejected(
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        append_frame(&mut buf, seq, &payload);
        let at = idx.index(buf.len());
        buf[at] ^= 1 << bit;
        match check_frame(&buf, seq) {
            FrameCheck::Frame { .. } => {
                prop_assert!(false, "single-bit flip at byte {at} bit {bit} accepted")
            }
            // A flip in the length field may make the frame look longer
            // than the buffer (Torn) or impossibly sized / checksum-bad
            // (Corrupt); either way it is not accepted.
            FrameCheck::Torn | FrameCheck::Corrupt => {}
        }
    }

    /// Every strict prefix of a valid frame is Torn, never accepted and
    /// never Corrupt — so a crashed append is always retryable.
    #[test]
    fn any_truncation_is_torn(
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        append_frame(&mut buf, seq, &payload);
        let at = cut.index(buf.len()); // 0..len, strictly short of the end
        prop_assert_eq!(check_frame(&buf[..at], seq), FrameCheck::Torn);
    }

    /// The record codec round-trips any delivered packet, and the
    /// decoder rejects any trailing garbage.
    #[test]
    fn packet_record_roundtrip(m in arb_packet(), junk in any::<u8>()) {
        let rec = WalRecord::Packet(m);
        let mut payload = Vec::new();
        rec.encode_payload(&mut payload);
        prop_assert_eq!(WalRecord::decode_payload(&payload), Some(rec));
        payload.push(junk);
        prop_assert_eq!(WalRecord::decode_payload(&payload), None);
    }

    /// The record decoder is total: arbitrary bytes never panic it.
    #[test]
    fn record_decoder_is_total(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = WalRecord::decode_payload(&payload);
    }

    /// Recovery after an arbitrary tail truncation lands on a durable
    /// prefix, and a second recovery pass is a byte-level no-op.
    #[test]
    fn recovery_truncation_is_idempotent(
        packets in proptest::collection::vec(arb_packet(), 1..24),
        cut in any::<prop::sample::Index>(),
    ) {
        let dir = case_dir();
        let seg = write_log(&dir, &packets, false);
        let full = std::fs::metadata(&seg).expect("stat").len();
        // Cut anywhere from the bare file header to one byte short.
        let header = 24u64;
        let keep = header + (cut.index((full - header) as usize) as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).expect("open");
        f.set_len(keep).expect("truncate");
        drop(f);

        let first = recover(&dir, &Recorder::new(), |_, _, _| {}).expect("first recovery");
        prop_assert!(first.next_seq <= packets.len() as u64, "no invented frames");
        let snapshot = dir_snapshot(&dir);
        let second = recover(&dir, &Recorder::new(), |_, _, _| {}).expect("second recovery");
        prop_assert_eq!(second.next_seq, first.next_seq, "watermark is stable");
        prop_assert_eq!(second.stats.bytes_truncated, 0, "nothing left to repair");
        prop_assert!(!second.stats.index_rebuilt, "index already agrees");
        prop_assert_eq!(dir_snapshot(&dir), snapshot, "second pass rewrites nothing");
        // Everything recovery kept decodes back to the original packets.
        let mut got = Vec::new();
        recover(&dir, &Recorder::new(), |_, _, r| got.push(r)).expect("third recovery");
        for (i, r) in got.iter().enumerate() {
            prop_assert_eq!(r, &WalRecord::Packet(packets[i]), "frame {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single flipped bit anywhere in a sealed log's frames never
    /// survives recovery silently: either the flipped frame (and its
    /// tail) is cut, or the seal is dropped — and the pass stays
    /// idempotent.
    #[test]
    fn recovery_bitflip_is_idempotent(
        packets in proptest::collection::vec(arb_packet(), 1..16),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let dir = case_dir();
        let seg = write_log(&dir, &packets, true);
        let mut raw = std::fs::read(&seg).expect("read segment");
        let header = 24usize;
        let at = header + idx.index(raw.len() - header);
        raw[at] ^= 1 << bit;
        std::fs::write(&seg, &raw).expect("write damaged segment");

        let sealed_frames = packets.len() as u64 + 1;
        let first = recover(&dir, &Recorder::new(), |_, _, _| {}).expect("first recovery");
        prop_assert!(first.next_seq < sealed_frames, "flipped frame must be cut");
        prop_assert!(!first.is_sealed(), "a damaged log is never sealed");
        let snapshot = dir_snapshot(&dir);
        let second = recover(&dir, &Recorder::new(), |_, _, _| {}).expect("second recovery");
        prop_assert_eq!(second.next_seq, first.next_seq);
        prop_assert_eq!(dir_snapshot(&dir), snapshot, "second pass rewrites nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
