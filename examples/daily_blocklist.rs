//! The paper's operational deliverable: daily lists of aggressive
//! scanners that operators could subscribe to and block.
//!
//! Simulates a week at the telescope, then writes one JSON blocklist per
//! day per definition under `out/blocklists/`, separating acknowledged
//! research scanners (which an operator may want to allow) from the
//! unacknowledged remainder. Also demonstrates the pcap writer by saving
//! a capture excerpt of the first day's darknet traffic.
//!
//! The simulation is durable: the first invocation writes every delivered
//! packet to a write-ahead log under `out/wal-blocklist/` and seals it.
//! Every later invocation finds the sealed log and *replays* it — the
//! detectors re-run over stored history without re-simulating the world,
//! producing the identical blocklists in a fraction of the wall time
//! (the timing line printed at the end shows which path ran). Delete the
//! directory to force a fresh simulation.
//!
//! ```sh
//! cargo run --release --example daily_blocklist
//! ```

use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::net::pcap::{PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_RAW};
use aggressive_scanners::pipeline::{self, RunOptions, Telemetry, WalRun};
use aggressive_scanners::simnet::scenario::{ScenarioConfig, Year};
use aggressive_scanners::wal;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

struct Blocklist {
    day: u64,
    definition: &'static str,
    threshold_note: String,
    /// Hitters with no disclosed research intent — block candidates.
    unacknowledged: Vec<String>,
    /// Acknowledged research scanners — review before blocking.
    acknowledged: Vec<String>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let body: Vec<String> =
        items.iter().map(|s| format!("{indent}  \"{}\"", json_escape(s))).collect();
    format!("[\n{}\n{indent}]", body.join(",\n"))
}

impl Blocklist {
    /// Pretty-printed JSON; serialization in this workspace is
    /// hand-rolled (see vendor/README.md).
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"day\": {},\n  \"definition\": \"{}\",\n  \"threshold_note\": \"{}\",\n  \
             \"unacknowledged\": {},\n  \"acknowledged\": {}\n}}\n",
            self.day,
            json_escape(self.definition),
            json_escape(&self.threshold_note),
            json_string_array(&self.unacknowledged, "  "),
            json_string_array(&self.acknowledged, "  "),
        )
    }
}

fn main() -> std::io::Result<()> {
    let days = 7;
    let cfg = || {
        let mut cfg = ScenarioConfig::darknet(Year::Y2022, days, 7);
        cfg.label = "blocklist-demo".into();
        cfg
    };
    let wal_dir = Path::new("out/wal-blocklist");
    let mut tel = Telemetry::disabled();

    // Replay the sealed event log when one exists for this exact
    // scenario; otherwise simulate once, durably, so the next run can.
    let t0 = std::time::Instant::now();
    let replayable = matches!(
        wal::peek_meta(wal_dir),
        Ok(Some(meta)) if meta.matches_scenario(&cfg())
    );
    let (run, simulated) = if replayable {
        println!("replaying {days} days of stored darknet history from {}...", wal_dir.display());
        match pipeline::replay_wal(cfg(), RunOptions::darknet_only(), wal_dir, &mut tel) {
            Ok(out) => (*out, false),
            Err(e) => {
                // Unsealed (interrupted) or damaged log: start over.
                println!("replay unavailable ({e}); re-simulating");
                fs::remove_dir_all(wal_dir)?;
                durable_simulation(cfg(), wal_dir, &mut tel)?
            }
        }
    } else {
        if wal_dir.exists() {
            println!("stored log does not match this scenario; re-simulating");
            fs::remove_dir_all(wal_dir)?;
        }
        durable_simulation(cfg(), wal_dir, &mut tel)?
    };
    let wall = t0.elapsed().as_secs_f64();

    let acked = run.world.acked_list(8);
    let rdns = run.world.rdns(64);
    let out_dir = Path::new("out/blocklists");
    fs::create_dir_all(out_dir)?;

    let mut written = 0;
    for day in 0..days {
        for def in Definition::ALL {
            let Some(hitters) = run.report.active_hitters(def, day) else { continue };
            let mut unacknowledged = BTreeSet::new();
            let mut acknowledged = BTreeSet::new();
            for ip in hitters {
                if acked.matches(*ip, &rdns).is_some() {
                    acknowledged.insert(ip.to_string());
                } else {
                    unacknowledged.insert(ip.to_string());
                }
            }
            let list = Blocklist {
                day,
                definition: def.short(),
                threshold_note: match def {
                    Definition::AddressDispersion => "event touched >= 10% of dark space".into(),
                    Definition::PacketVolume => {
                        format!("event packets > {} (top-0.01% ECDF)", run.report.d2_threshold)
                    }
                    Definition::DistinctPorts => {
                        format!("distinct ports/day >= {}", run.report.d3_threshold)
                    }
                },
                unacknowledged: unacknowledged.into_iter().collect(),
                acknowledged: acknowledged.into_iter().collect(),
            };
            let path = out_dir.join(format!("day{day}-{}.json", def.short().to_lowercase()));
            fs::write(&path, list.to_json())?;
            written += 1;
        }
    }
    println!("wrote {written} blocklists under {}", out_dir.display());

    if simulated {
        // Bonus: persist a capture excerpt like a telescope operator
        // would. (Re-run the same seeded scenario and write the first 10k
        // dark-bound packets as a raw-IP pcap.) Replay invocations skip
        // this — their whole point is not re-simulating.
        let mut cfg = ScenarioConfig::darknet(Year::Y2022, 1, 7);
        cfg.label = "pcap-excerpt".into();
        let mut sc = aggressive_scanners::simnet::scenario::Scenario::build(cfg);
        let dark = sc.world.config.dark;
        let file = fs::File::create("out/darknet_excerpt.pcap")?;
        let mut w = PcapWriter::new(std::io::BufWriter::new(file), LINKTYPE_RAW, DEFAULT_SNAPLEN)
            .expect("pcap header");
        while let Some(pkt) = sc.mux.next_packet() {
            if !dark.contains(pkt.dst) {
                continue;
            }
            w.write_packet(pkt.ts, &pkt.to_bytes()).expect("pcap record");
            if w.record_count() >= 10_000 {
                break;
            }
        }
        println!("wrote out/darknet_excerpt.pcap ({} records)", w.record_count());
        w.finish().expect("flush pcap");
    }

    println!(
        "{} in {wall:.1}s (fingerprint {:016x}); run again to {}",
        if simulated { "simulated + journaled" } else { "replayed" },
        run.fingerprint(),
        if simulated { "replay the stored history" } else { "replay again" },
    );
    Ok(())
}

/// Simulate the scenario while journaling every delivered packet to a
/// fresh write-ahead log, sealing it so later invocations can replay.
fn durable_simulation(
    cfg: ScenarioConfig,
    wal_dir: &Path,
    tel: &mut Telemetry,
) -> std::io::Result<(pipeline::RunOutput, bool)> {
    println!("simulating {} days of darknet traffic (journal: {})...", cfg.days, wal_dir.display());
    let out = pipeline::run_wal(cfg, RunOptions::darknet_only(), &WalRun::new(wal_dir), tel)?
        .completed()
        .expect("a run with no suspension points always completes");
    Ok((*out, true))
}
