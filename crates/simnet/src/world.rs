//! The synthetic world: address plan, organizations, and intel builders.
//!
//! Mirrors the paper's measurement geography at a configurable scale:
//! a Merit-like ISP (user space, in-network content caches, and the dark
//! block the telescope watches), a CU-like campus network with *no*
//! caches, a fleet of GreyNoise-style sensors, and an external Internet
//! of scanner-originating and benign organizations whose AS types,
//! countries and regions are shaped like Table 5's origin mix.
//!
//! Organization names are synthetic: the paper anonymizes origin networks
//! ("Cloud (US)", "ISP (CN)", ...), and so do we.

use crate::space::ObservableSpace;
#[allow(unused_imports)]
use ah_flow::router::{RoutePolicy, RouterId};
use ah_intel::acked::{AckedOrg, AckedScanners};
use ah_intel::asn::{AsInfo, AsType, AsnDb, CountryCode};
use ah_intel::rdns::RdnsTable;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::prefix::{Prefix, PrefixMap, PrefixSet};

/// Routing regions: which cluster of upstream peers announces an external
/// prefix toward the ISP. Determines the Table 2 router skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Europe/Asia — enters mostly at router-1 (its tier-1 upstreams).
    AsiaEu,
    /// North America — mostly router-2.
    NorthAm,
    /// Research networks — mostly router-3 (R&E peerings).
    Research,
    /// Content/CDN networks.
    Content,
    /// Everything else.
    Other,
}

impl Region {
    /// Per-region probability (in percent) that a given internal block is
    /// reached via router 1, 2, 3. Rows sum to 100.
    pub fn router_weights(self) -> [u32; 3] {
        match self {
            Region::AsiaEu => [62, 24, 14],
            Region::NorthAm => [30, 50, 20],
            Region::Research => [14, 26, 60],
            Region::Content => [30, 40, 30],
            Region::Other => [34, 33, 33],
        }
    }
}

/// One external organization (an AS).
#[derive(Debug, Clone)]
pub struct OrgDef {
    /// Organization name (feeds rDNS and the acknowledged list).
    pub name: String,
    /// Autonomous system number.
    pub asn: u32,
    /// Business type (cloud, ISP, research, ...).
    pub as_type: AsType,
    /// Registration country.
    pub country: CountryCode,
    /// Geographic region the country rolls up to.
    pub region: Region,
    /// Announced prefixes.
    pub prefixes: Vec<Prefix>,
    /// Some orgs disclose their scanning (Acknowledged Scanners). The
    /// keywords feed the reverse-DNS match stage.
    pub acked_keywords: Vec<String>,
}

impl OrgDef {
    /// Total addresses across the org's prefixes.
    pub fn size(&self) -> u64 {
        self.prefixes.iter().map(Prefix::size).sum()
    }

    /// The `i`-th address of the org (dense across its prefixes,
    /// wrapping). `None` for an org with no prefixes.
    pub fn host(&self, i: u64) -> Option<Ipv4Addr4> {
        let size = self.size();
        if size == 0 {
            return None;
        }
        let mut idx = i % size;
        for p in &self.prefixes {
            if idx < p.size() {
                return p.addr_at(idx as u32);
            }
            idx -= p.size();
        }
        None
    }

    /// The `i % size`-th host address. Like [`OrgDef::host`] but
    /// infallible, for scenario code indexing registry orgs — which
    /// always carry at least one prefix (see the registry tables in
    /// this module).
    pub fn host_cycled(&self, i: u64) -> Ipv4Addr4 {
        // ah-lint: allow(panic-path, reason = "host() is None only for an org with zero prefixes; every registry org carries at least one, as the unit tests assert")
        self.host(i).expect("registry org has hosts")
    }

    /// Is this org on the acknowledged-scanners list?
    pub fn is_acked(&self) -> bool {
        !self.acked_keywords.is_empty()
    }
}

/// Parse a CIDR literal from this module's static tables.
fn static_prefix(s: &str) -> Prefix {
    // ah-lint: allow(panic-path, reason = "applied only to compile-time CIDR literals in the static world registry; every table is exercised by unit tests")
    s.parse().expect("static prefix literal")
}

/// Scale-controlling sizes of the world's monitored networks.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// The telescope's dark block.
    pub dark: Prefix,
    /// Merit-like ISP user space.
    pub merit_users: Prefix,
    /// In-network content caches at Merit (internal; traffic to them
    /// never crosses the border routers).
    pub merit_caches: Prefix,
    /// CU-like campus user space (no caches).
    pub cu_users: Prefix,
    /// GreyNoise-style sensor prefixes.
    pub sensors: Vec<Prefix>,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            dark: static_prefix("20.0.0.0/18"),        // 16,384 dark IPs
            merit_users: static_prefix("10.0.0.0/17"), // 32,768 addrs, 128 /24s
            merit_caches: static_prefix("10.128.0.0/24"),
            cu_users: static_prefix("172.16.0.0/21"), // 2,048 addrs, 8 /24s
            sensors: vec![
                static_prefix("198.18.0.0/26"),
                static_prefix("198.18.64.0/26"),
                static_prefix("198.18.128.0/26"),
                static_prefix("198.18.192.0/26"),
            ],
        }
    }
}

impl WorldConfig {
    /// Smaller world for unit/integration tests.
    pub fn tiny() -> WorldConfig {
        WorldConfig {
            dark: static_prefix("20.0.0.0/22"),        // 1,024 dark IPs
            merit_users: static_prefix("10.0.0.0/22"), // 1,024
            merit_caches: static_prefix("10.128.0.0/26"),
            cu_users: static_prefix("172.16.0.0/24"), // 256
            sensors: vec![static_prefix("198.18.0.0/27")],
        }
    }
}

/// The assembled world.
#[derive(Debug, Clone)]
pub struct World {
    /// The address plan the world was built from.
    pub config: WorldConfig,
    /// External organizations, indexed by [`OrgId`].
    pub orgs: Vec<OrgDef>,
    observable: ObservableSpace,
}

/// Index into [`World::orgs`].
pub type OrgId = usize;

impl World {
    /// Build the world with the standard organization registry.
    pub fn new(config: WorldConfig) -> World {
        let orgs = standard_orgs();
        let mut prefixes = vec![config.dark, config.merit_users, config.cu_users];
        prefixes.extend(config.sensors.iter().copied());
        let observable = ObservableSpace::new(prefixes);
        World { config, orgs, observable }
    }

    /// The scanner-observable space: the dark block, both ISPs' user
    /// spaces, and the sensors. Caches are excluded — they are content
    /// infrastructure, not scan targets of interest at this scale.
    pub fn observable(&self) -> &ObservableSpace {
        &self.observable
    }

    /// Find an org by name; `None` when no org carries it.
    pub fn org(&self, name: &str) -> Option<OrgId> {
        self.orgs.iter().position(|o| o.name == name)
    }

    /// The org `name` refers to, for scenario code naming orgs out of
    /// the static registry (where a miss is a typo, not a runtime
    /// condition). The panic path lives here, once and audited,
    /// instead of at every scenario call site.
    pub fn registry_org(&self, name: &str) -> &OrgDef {
        // ah-lint: allow(panic-path, reason = "scenario definitions name orgs from the static registry built in this module; a miss is a construction bug every scenario test catches immediately")
        self.org(name).map(|id| &self.orgs[id]).expect("org exists in the static registry")
    }

    /// Orgs filtered by predicate.
    pub fn orgs_where(&self, pred: impl Fn(&OrgDef) -> bool) -> Vec<OrgId> {
        self.orgs.iter().enumerate().filter(|(_, o)| pred(o)).map(|(i, _)| i).collect()
    }

    /// Merit's internal address set (users + caches + dark block — the
    /// telescope block is routed by Merit, so probes to it transit
    /// Merit's border like any ingress traffic).
    pub fn merit_internal(&self) -> PrefixSet {
        PrefixSet::from_prefixes(vec![
            self.config.merit_users,
            self.config.merit_caches,
            self.config.dark,
        ])
    }

    /// CU's internal address set.
    pub fn cu_internal(&self) -> PrefixSet {
        PrefixSet::from_prefixes(vec![self.config.cu_users])
    }

    /// Sensor address set for the honeypot.
    pub fn sensor_set(&self) -> PrefixSet {
        PrefixSet::from_prefixes(self.config.sensors.clone())
    }

    /// Number of /24s in Merit's announced space (Figure 2 normalization).
    pub fn merit_slash24s(&self) -> u64 {
        (self.config.merit_users.size() + self.config.merit_caches.size() + self.config.dark.size())
            .div_ceil(256)
    }

    /// Number of /24s in CU's space.
    pub fn cu_slash24s(&self) -> u64 {
        self.config.cu_users.size().div_ceil(256)
    }

    /// Build the ASN registry over all orgs plus the monitored networks.
    pub fn asn_db(&self) -> AsnDb {
        let mut db = AsnDb::new();
        for o in &self.orgs {
            for p in &o.prefixes {
                db.announce(
                    *p,
                    AsInfo {
                        asn: o.asn,
                        org: o.name.clone(),
                        as_type: o.as_type,
                        country: o.country,
                    },
                );
            }
        }
        let merit = AsInfo {
            asn: 237,
            org: "Merit-like ISP".into(),
            as_type: AsType::Education,
            country: CountryCode::new(b"US"),
        };
        db.announce(self.config.merit_users, merit.clone());
        db.announce(self.config.merit_caches, merit.clone());
        db.announce(self.config.dark, merit);
        db.announce(
            self.config.cu_users,
            AsInfo {
                asn: 104,
                org: "CU-like Campus".into(),
                as_type: AsType::Education,
                country: CountryCode::new(b"US"),
            },
        );
        db
    }

    /// The `k`-th *cloud-hosted* scanning address of the `acked_idx`-th
    /// acknowledged org. Research scanners frequently rent VMs at the big
    /// cloud providers (the paper's Table 5 shows thousands of ACKed IPs
    /// inside the top US cloud), so acknowledged orgs scan both from
    /// their own prefixes and from these cloud slots.
    /// `None` when the registry has no "Umbra Cloud" org (custom
    /// registries) or the org has no prefixes.
    pub fn acked_cloud_host(&self, acked_idx: usize, k: u64) -> Option<Ipv4Addr4> {
        let umbra = &self.orgs[self.org("Umbra Cloud")?];
        umbra.host(50_000 + (acked_idx as u64) * 97 + k)
    }

    /// Build the acknowledged-scanners list.
    ///
    /// Mirrors the real list's incompleteness: only the first
    /// `disclosed_per_org` own-prefix addresses (plus half as many
    /// cloud-hosted ones) of each acked org are listed even though the
    /// org scans from more — the extras are only findable via the
    /// reverse-DNS keyword stage (Table 6's "Domain matches").
    pub fn acked_list(&self, disclosed_per_org: u64) -> AckedScanners {
        let orgs = self
            .orgs
            .iter()
            .filter(|o| o.is_acked())
            .enumerate()
            .map(|(idx, o)| {
                let mut ips: Vec<Ipv4Addr4> =
                    (0..disclosed_per_org.min(o.size())).filter_map(|i| o.host(i)).collect();
                ips.extend(
                    (0..disclosed_per_org / 2).filter_map(|k| self.acked_cloud_host(idx, k)),
                );
                AckedOrg { name: o.name.clone(), ips, keywords: o.acked_keywords.clone() }
            })
            .collect();
        AckedScanners::new(orgs)
    }

    /// Build the PTR table: acked-org addresses (own prefixes and cloud
    /// slots) resolve to names carrying the org's keyword.
    pub fn rdns(&self, hosts_per_acked_org: u64) -> RdnsTable {
        let mut t = RdnsTable::new();
        for (idx, o) in self.orgs.iter().filter(|o| o.is_acked()).enumerate() {
            let kw = &o.acked_keywords[0];
            for i in 0..hosts_per_acked_org.min(o.size()) {
                if let Some(h) = o.host(i) {
                    t.insert(h, &format!("probe-{i}.{kw}.example.org"));
                }
            }
            for k in 0..hosts_per_acked_org / 2 {
                if let Some(h) = self.acked_cloud_host(idx, k) {
                    t.insert(h, &format!("vm-{k}.{kw}.example.org"));
                }
            }
        }
        t
    }

    /// The Merit routing policy (see [`RegionRoutePolicy`]).
    pub fn merit_policy(&self) -> RegionRoutePolicy {
        let mut regions = PrefixMap::new();
        for o in &self.orgs {
            for p in &o.prefixes {
                regions.insert(*p, o.region);
            }
        }
        RegionRoutePolicy { regions, salt: 0x4d45_5249 }
    }
}

/// Region-weighted routing: the border router for (external, internal)
/// depends on the external org's region and, deterministically, on the
/// internal /22 block — so one scanner sweeping the whole ISP shows up at
/// all three routers with region-shaped packet shares (Table 8), while
/// region mixes skew aggregate shares (Table 2).
#[derive(Debug, Clone)]
pub struct RegionRoutePolicy {
    regions: PrefixMap<Region>,
    salt: u64,
}

impl RoutePolicy for RegionRoutePolicy {
    fn route(&self, external: Ipv4Addr4, internal: Ipv4Addr4) -> RouterId {
        let region = self.regions.lookup(external).copied().unwrap_or(Region::Other);
        let mut w = region.router_weights();
        // Router-3 is a regional point of presence: only about half of
        // the external /24s have a path through it at all (Table 8 shows
        // ~50% of def-1/2 hitters never appearing at router-3). Research
        // peerings are the exception.
        let r3_availability: u64 = match region {
            Region::Research => 95,
            Region::Content => 85,
            Region::AsiaEu => 50,
            Region::NorthAm => 55,
            Region::Other => 60,
        };
        let ext24 = u64::from(external.to_u32() >> 8);
        if crate::rng::hash64(ext24 ^ self.salt.rotate_left(17)) % 100 >= r3_availability {
            // No router-3 path: its weight folds onto routers 1 and 2.
            w[0] += w[2] / 2;
            w[1] += w[2] - w[2] / 2;
            w[2] = 0;
        }
        let block = u64::from(internal.to_u32() >> 10); // per-/22 decision
        let h = crate::rng::hash64(block ^ self.salt ^ (external.to_u32() as u64 >> 16 << 40));
        let x = (h % 100) as u32;
        if x < w[0] {
            1
        } else if x < w[0] + w[1] {
            2
        } else {
            3
        }
    }
}

fn cc(code: &[u8; 2]) -> CountryCode {
    CountryCode::new(code)
}

fn org(
    name: &str,
    asn: u32,
    as_type: AsType,
    country: CountryCode,
    region: Region,
    prefixes: &[&str],
    acked_keywords: &[&str],
) -> OrgDef {
    OrgDef {
        name: name.to_string(),
        asn,
        as_type,
        country,
        region,
        prefixes: prefixes.iter().map(|p| static_prefix(p)).collect(),
        acked_keywords: acked_keywords.iter().map(|s| s.to_string()).collect(),
    }
}

/// The standard organization registry: shaped like the paper's Table 5
/// origin mix (a dominant US cloud, Chinese ISPs/clouds/hosting, TW/KR/RU
/// ISPs) plus research orgs for the acknowledged list and benign content
/// and eyeball networks.
pub fn standard_orgs() -> Vec<OrgDef> {
    vec![
        // -- Scanner-heavy clouds and ISPs (Table 5 shape) --
        org(
            "Umbra Cloud",
            65001,
            AsType::Cloud,
            cc(b"US"),
            Region::NorthAm,
            &["100.64.0.0/16"],
            &[],
        ),
        org(
            "Nimbus Compute",
            65002,
            AsType::Cloud,
            cc(b"US"),
            Region::NorthAm,
            &["100.65.0.0/16"],
            &[],
        ),
        org(
            "Vapor Cloud",
            65003,
            AsType::Cloud,
            cc(b"US"),
            Region::NorthAm,
            &["100.66.0.0/16"],
            &[],
        ),
        org(
            "Stratus Platform",
            65004,
            AsType::Cloud,
            cc(b"US"),
            Region::NorthAm,
            &["100.67.0.0/16"],
            &[],
        ),
        org(
            "Great Wall Telecom",
            65011,
            AsType::Isp,
            cc(b"CN"),
            Region::AsiaEu,
            &["101.0.0.0/16"],
            &[],
        ),
        org(
            "Red Lantern Broadband",
            65012,
            AsType::Isp,
            cc(b"CN"),
            Region::AsiaEu,
            &["101.1.0.0/16"],
            &[],
        ),
        org("Jade Cloud", 65013, AsType::Cloud, cc(b"CN"), Region::AsiaEu, &["101.2.0.0/16"], &[]),
        org(
            "Dragon Hosting",
            65014,
            AsType::Hosting,
            cc(b"CN"),
            Region::AsiaEu,
            &["101.3.0.0/16"],
            &[],
        ),
        org("Formosa Net", 65015, AsType::Isp, cc(b"TW"), Region::AsiaEu, &["101.4.0.0/16"], &[]),
        org(
            "Han River Telecom",
            65016,
            AsType::Isp,
            cc(b"KR"),
            Region::AsiaEu,
            &["101.5.0.0/16"],
            &[],
        ),
        org("Taiga Net", 65017, AsType::Isp, cc(b"RU"), Region::AsiaEu, &["102.0.0.0/16"], &[]),
        org("Prairie ISP", 65018, AsType::Isp, cc(b"US"), Region::NorthAm, &["103.0.0.0/16"], &[]),
        org(
            "Elbe Hosting",
            65019,
            AsType::Hosting,
            cc(b"DE"),
            Region::AsiaEu,
            &["102.1.0.0/16"],
            &[],
        ),
        org(
            "Polder Cloud",
            65020,
            AsType::Cloud,
            cc(b"NL"),
            Region::AsiaEu,
            &["102.2.0.0/16"],
            &[],
        ),
        // -- Acknowledged research scanners --
        org(
            "ScanLab University",
            65101,
            AsType::Education,
            cc(b"US"),
            Region::Research,
            &["104.0.0.0/24"],
            &["scanlab"],
        ),
        org(
            "Atlas Survey Project",
            65102,
            AsType::Education,
            cc(b"US"),
            Region::Research,
            &["104.0.1.0/24"],
            &["atlas-survey"],
        ),
        org(
            "OpenMeasure Foundation",
            65103,
            AsType::Enterprise,
            cc(b"US"),
            Region::Research,
            &["104.0.2.0/24"],
            &["openmeasure"],
        ),
        org(
            "NetSight Security",
            65104,
            AsType::Enterprise,
            cc(b"US"),
            Region::Research,
            &["104.0.3.0/24"],
            &["netsight"],
        ),
        org(
            "Baltic Internet Observatory",
            65105,
            AsType::Education,
            cc(b"DE"),
            Region::Research,
            &["104.0.4.0/24"],
            &["baltic-obs"],
        ),
        org(
            "Kiwi Census",
            65106,
            AsType::Enterprise,
            cc(b"GB"),
            Region::Research,
            &["104.0.5.0/24"],
            &["kiwi-census"],
        ),
        org(
            "Sakura Probe Net",
            65107,
            AsType::Education,
            cc(b"JP"),
            Region::Research,
            &["104.0.6.0/24"],
            &["sakura-probe"],
        ),
        org(
            "Fjord Scanners",
            65108,
            AsType::Enterprise,
            cc(b"NO"),
            Region::Research,
            &["104.0.7.0/24"],
            &["fjord-scan"],
        ),
        org(
            "Gallic Survey",
            65109,
            AsType::Education,
            cc(b"FR"),
            Region::Research,
            &["104.0.8.0/24"],
            &["gallic-survey"],
        ),
        org(
            "Alpine Recon",
            65110,
            AsType::Enterprise,
            cc(b"CH"),
            Region::Research,
            &["104.0.9.0/24"],
            &["alpine-recon"],
        ),
        org(
            "Maple Watch",
            65111,
            AsType::Education,
            cc(b"CA"),
            Region::Research,
            &["104.0.10.0/24"],
            &["maple-watch"],
        ),
        org(
            "Antipode Labs",
            65112,
            AsType::Enterprise,
            cc(b"AU"),
            Region::Research,
            &["104.0.11.0/24"],
            &["antipode-labs"],
        ),
        // -- Benign infrastructure --
        org(
            "Hyperflix CDN",
            65201,
            AsType::Cloud,
            cc(b"US"),
            Region::Content,
            &["150.0.0.0/14"],
            &[],
        ),
        org("Globe Eyeballs", 65202, AsType::Isp, cc(b"US"), Region::Other, &["160.0.0.0/14"], &[]),
        // -- The long tail: background-radiation source pool --
        org("Misc Internet", 65300, AsType::Isp, cc(b"BR"), Region::Other, &["110.0.0.0/12"], &[]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn observable_space_covers_monitored_networks() {
        let w = world();
        let obs = w.observable();
        assert!(obs.index_of(Ipv4Addr4::new(20, 0, 10, 1)).is_some(), "dark");
        assert!(obs.index_of(Ipv4Addr4::new(10, 0, 5, 5)).is_some(), "merit");
        assert!(obs.index_of(Ipv4Addr4::new(172, 16, 1, 1)).is_some(), "cu");
        assert!(obs.index_of(Ipv4Addr4::new(198, 18, 0, 5)).is_some(), "sensor");
        assert!(obs.index_of(Ipv4Addr4::new(100, 64, 0, 1)).is_none(), "external org");
    }

    #[test]
    fn org_lookup_and_hosts() {
        let w = world();
        let id = w.org("Umbra Cloud").expect("registry org");
        let o = &w.orgs[id];
        assert_eq!(o.host(0), Some(Ipv4Addr4::new(100, 64, 0, 0)));
        assert_eq!(o.host(65535), Some(Ipv4Addr4::new(100, 64, 255, 255)));
        assert_eq!(o.host(65536), o.host(0), "wraps");
        assert_eq!(o.size(), 65536);
    }

    #[test]
    fn unknown_org_is_none() {
        assert_eq!(world().org("Nonexistent"), None);
    }

    #[test]
    fn empty_org_has_no_hosts() {
        let o = OrgDef {
            name: "Ghost".into(),
            asn: 1,
            as_type: AsType::Isp,
            country: cc(b"US"),
            region: Region::Other,
            prefixes: vec![],
            acked_keywords: vec![],
        };
        assert_eq!(o.size(), 0);
        assert_eq!(o.host(0), None);
        assert_eq!(o.host(12345), None);
    }

    #[test]
    fn acked_orgs_have_keywords() {
        let w = world();
        let acked = w.orgs_where(|o| o.is_acked());
        assert_eq!(acked.len(), 12);
        let list = w.acked_list(8);
        assert_eq!(list.org_count(), 12);
        // 8 own-prefix IPs plus 4 cloud-hosted slots per org.
        assert_eq!(list.ip_count(), 12 * (8 + 4));
    }

    #[test]
    fn cloud_hosted_acked_ips_match_both_stages() {
        let w = world();
        let list = w.acked_list(8);
        let rdns = w.rdns(16);
        // Cloud slot 0 is on the disclosed list (IP match).
        let on_list = w.acked_cloud_host(0, 0).unwrap();
        assert!(list.matches(on_list, &rdns).unwrap().is_ip_match());
        // Cloud slot 6 is undisclosed but resolves with the keyword.
        let off_list = w.acked_cloud_host(0, 6).unwrap();
        let m = list.matches(off_list, &rdns).unwrap();
        assert!(!m.is_ip_match());
        // And it lives inside the big cloud's prefix.
        let db = w.asn_db();
        assert_eq!(db.lookup(off_list).unwrap().org, "Umbra Cloud");
    }

    #[test]
    fn rdns_covers_more_than_the_list() {
        let w = world();
        let list = w.acked_list(4);
        let rdns = w.rdns(16);
        let org = &w.orgs[w.org("ScanLab University").unwrap()];
        // host 10 is not on the list but has a keyword PTR.
        let m = list.matches(org.host(10).unwrap(), &rdns).unwrap();
        assert!(!m.is_ip_match());
        assert_eq!(m.org(), "ScanLab University");
        // host 2 is on the list: IP match wins.
        assert!(list.matches(org.host(2).unwrap(), &rdns).unwrap().is_ip_match());
    }

    #[test]
    fn asn_db_attributes_scanners_and_monitored_space() {
        let w = world();
        let db = w.asn_db();
        let info = db.lookup(Ipv4Addr4::new(101, 4, 3, 2)).unwrap();
        assert_eq!(info.org, "Formosa Net");
        assert_eq!(info.country.as_str(), "TW");
        assert_eq!(db.lookup(Ipv4Addr4::new(20, 0, 0, 1)).unwrap().org, "Merit-like ISP");
        assert_eq!(db.lookup(Ipv4Addr4::new(172, 16, 0, 1)).unwrap().org, "CU-like Campus");
    }

    #[test]
    fn internal_sets_are_disjoint_networks() {
        let w = world();
        let merit = w.merit_internal();
        let cu = w.cu_internal();
        assert!(merit.contains(Ipv4Addr4::new(20, 0, 0, 1)), "dark is merit-routed");
        assert!(merit.contains(Ipv4Addr4::new(10, 128, 0, 9)), "caches internal");
        assert!(!merit.contains(Ipv4Addr4::new(172, 16, 0, 1)));
        assert!(cu.contains(Ipv4Addr4::new(172, 16, 0, 1)));
        assert!(!cu.contains(Ipv4Addr4::new(10, 0, 0, 1)));
    }

    #[test]
    fn slash24_counts() {
        let w = world();
        assert_eq!(w.merit_slash24s(), 128 + 1 + 64);
        assert_eq!(w.cu_slash24s(), 8);
        assert!(w.merit_slash24s() > 20 * w.cu_slash24s());
    }

    #[test]
    fn routing_policy_spreads_scanners_across_routers() {
        let w = world();
        let policy = w.merit_policy();
        let mut counts = [0u32; 3];
        let mut r3_missing_for_some_source = false;
        for s in 0..16u32 {
            let scanner = Ipv4Addr4::new(101, 0, s as u8, 7); // AsiaEu, distinct /24s
            let mut per_src = [0u32; 3];
            for i in 0..128u32 {
                // Different internal /22 blocks.
                let internal = Ipv4Addr4(Ipv4Addr4::new(10, 0, 0, 0).to_u32() + i * 1024);
                let r = policy.route(scanner, internal);
                per_src[(r - 1) as usize] += 1;
                counts[(r - 1) as usize] += 1;
            }
            // Every source reaches routers 1 and 2.
            assert!(per_src[0] > 0 && per_src[1] > 0, "{per_src:?}");
            if per_src[2] == 0 {
                r3_missing_for_some_source = true;
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "all routers carry traffic: {counts:?}");
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "AsiaEu skew: {counts:?}");
        // Router-3 availability gating: some sources have no r3 path at all
        // (Table 8's ~50% presence).
        assert!(r3_missing_for_some_source);
    }

    #[test]
    fn routing_policy_is_deterministic() {
        let w = world();
        let p1 = w.merit_policy();
        let p2 = w.merit_policy();
        let ext = Ipv4Addr4::new(100, 64, 1, 2);
        for i in 0..64u32 {
            let int = Ipv4Addr4(Ipv4Addr4::new(10, 0, 0, 0).to_u32() + i * 4096);
            assert_eq!(p1.route(ext, int), p2.route(ext, int));
        }
    }

    #[test]
    fn tiny_world_is_consistent() {
        let w = World::new(WorldConfig::tiny());
        assert_eq!(w.config.dark.size(), 1024);
        assert!(!w.observable().is_empty());
        assert_eq!(w.merit_slash24s(), 4 + 1 + 4);
    }
}
