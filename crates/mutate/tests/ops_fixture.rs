//! Fixture-driven enumeration test: `fixtures/sites.rs` marks every
//! line that must produce mutation sites with `//~ <op>…` (distinct
//! operators, order-free), and every unmarked line must produce none —
//! the same marker idiom as `ah-lint`'s fixture suite.

use std::collections::BTreeSet;

use ah_mutate::enumerate_source;

#[test]
fn fixture_lines_enumerate_exactly_the_marked_operators() {
    let src = include_str!("fixtures/sites.rs");
    let mutants = enumerate_source("crates/x/src/sites.rs", src);

    // line -> distinct ops enumerated there.
    let mut got: std::collections::BTreeMap<u32, BTreeSet<&str>> = Default::default();
    for m in &mutants {
        got.entry(m.line).or_default().insert(m.op);
    }

    let mut checked_lines = 0;
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let want: BTreeSet<&str> = match line.split_once("//~") {
            Some((_, marks)) => marks.split_whitespace().collect(),
            None => BTreeSet::new(),
        };
        let have = got.remove(&lineno).unwrap_or_default();
        assert_eq!(
            have,
            want,
            "line {lineno} `{}`: enumerated {have:?}, fixture expects {want:?}",
            line.trim()
        );
        checked_lines += 1;
    }
    assert!(got.is_empty(), "mutants past the last line: {got:?}");
    assert!(checked_lines > 50, "fixture unexpectedly short");
    assert!(mutants.len() >= 15, "fixture should be operator-dense, got {}", mutants.len());
}
