//! Byte-level path equivalence: writing the simulated traffic to a pcap
//! file, reading it back, and running the telescope over the parsed
//! packets must produce exactly the same events as the direct in-memory
//! path. This exercises serialization, the pcap format, and parsing as a
//! single system the way a real telescope deployment would.

use aggressive_scanners::net::packet::PacketMeta;
use aggressive_scanners::net::pcap::{PcapReader, PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_RAW};
use aggressive_scanners::simnet::scenario::{Scenario, ScenarioConfig};
use aggressive_scanners::telescope::capture::Telescope;
use aggressive_scanners::telescope::timeout;

fn events_signature(evs: &[aggressive_scanners::telescope::event::DarknetEvent]) -> Vec<String> {
    let mut sigs: Vec<String> = evs
        .iter()
        .map(|e| {
            format!(
                "{}|{}|{:?}|{}|{}|{}|{}",
                e.key.src, e.key.dst_port, e.key.class, e.start, e.end, e.packets, e.unique_dsts
            )
        })
        .collect();
    sigs.sort();
    sigs
}

#[test]
fn pcap_roundtrip_preserves_all_darknet_events() {
    let cfg = ScenarioConfig::tiny(1, 77);
    // Path A: direct.
    let mut sc = Scenario::build(cfg.clone());
    let dark = sc.world.config.dark;
    let mut direct = Telescope::new(dark, timeout::paper_default());
    let mut pcap_bytes = Vec::new();
    {
        let mut w = PcapWriter::new(&mut pcap_bytes, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        while let Some(pkt) = sc.mux.next_packet() {
            direct.observe(&pkt);
            if dark.contains(pkt.dst) {
                // Serialize exactly what the telescope would store.
                w.write_packet(pkt.ts, &pkt.to_bytes()).unwrap();
            }
        }
        w.finish().unwrap();
    }
    let direct_events = direct.flush();
    assert!(!direct_events.is_empty());

    // Path B: through the capture file.
    let mut replayed = Telescope::new(dark, timeout::paper_default());
    let reader = PcapReader::new(&pcap_bytes[..]).unwrap();
    let mut records = 0u64;
    for rec in reader.records() {
        let rec = rec.unwrap();
        let pkt = PacketMeta::parse_ip(&rec.data, rec.ts).unwrap();
        replayed.observe(&pkt);
        records += 1;
    }
    assert!(records > 1000, "the dark space must receive traffic: {records}");
    let replayed_events = replayed.flush();

    assert_eq!(events_signature(&direct_events), events_signature(&replayed_events));
    assert_eq!(direct.stats().scan_packets(), replayed.stats().scan_packets());
}

#[test]
fn truncated_capture_file_fails_cleanly_midstream() {
    let cfg = ScenarioConfig::tiny(1, 78);
    let mut sc = Scenario::build(cfg);
    let dark = sc.world.config.dark;
    let mut pcap_bytes = Vec::new();
    {
        let mut w = PcapWriter::new(&mut pcap_bytes, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        let mut wrote = 0;
        while let Some(pkt) = sc.mux.next_packet() {
            if dark.contains(pkt.dst) {
                w.write_packet(pkt.ts, &pkt.to_bytes()).unwrap();
                wrote += 1;
                if wrote >= 100 {
                    break;
                }
            }
        }
        w.finish().unwrap();
    }
    // Cut the file mid-record: the reader must yield the intact prefix
    // and then exactly one error, never a panic.
    let cut = &pcap_bytes[..pcap_bytes.len() - 7];
    let reader = PcapReader::new(cut).unwrap();
    let mut ok = 0;
    let mut errs = 0;
    for rec in reader.records() {
        match rec {
            Ok(_) => ok += 1,
            Err(_) => errs += 1,
        }
    }
    assert_eq!(ok, 99);
    assert_eq!(errs, 1);
}
