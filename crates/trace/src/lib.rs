//! # ah-trace — first-party structured span tracing
//!
//! ah-obs answers *"how much / how fast"*; this crate answers *"where
//! did this packet's time go"*. It provides:
//!
//! * **Per-thread bounded lock-free buffers** ([`buffer::TraceBuf`]):
//!   each tracing thread appends span begin/end and instant events to
//!   its own fixed-capacity buffer behind the same synchronization
//!   facade idiom as the SPSC/MPSC rings ([`sync::TraceSync`]), so the
//!   orderings stay model-checkable. Full buffers drop and count —
//!   tracing never blocks.
//! * **Causal spans**: [`Tracer::span`] returns a guard that emits a
//!   begin event now and an end event on drop; nesting on a track *is*
//!   the parent/child relation, exactly as Chrome's trace-event duration
//!   model defines it.
//! * **Sampled packet journeys**: a seeded per-source sampler
//!   ([`Tracer::journey_id`]) follows ~1/N source IPs end-to-end. The
//!   derivation is the same chained-splitmix idiom as
//!   `ah_simnet::faults::packet_decision_seed` — a pure function of
//!   `(seed, src)` that consumes **no RNG draws**, so sampling cannot
//!   perturb the simulation.
//! * **Exporters** ([`export`]): Chrome trace-event JSON (Perfetto /
//!   `chrome://tracing` loadable, one track per registered thread, flow
//!   arrows linking each journey across tracks) and folded-stack
//!   flamegraph text (the no-`perf` fallback for
//!   `scripts/flamegraph.sh`).
//! * **A schema validator** ([`check`], plus the `ah-trace` binary) so
//!   CI can gate on balanced begin/end events, per-track timestamp
//!   monotonicity and journey presence without any external tooling.
//!
//! ## Why tracing cannot perturb determinism
//!
//! Every API is observation-only, the same contract ah-obs holds:
//! nothing in the pipeline ever reads a trace buffer back, the sampler
//! is a stateless hash (no RNG draws consumed), buffers are
//! preallocated and never block (overflow drops), and wall-clock
//! timestamps flow only *out* to trace files. A disabled [`Tracer`] is
//! `None` all the way down, so every call site is one
//! `Option`-discriminant branch. `tests/trace.rs` proves the
//! `RunOutput` fingerprint is bitwise-identical with tracing on vs. off
//! at 1 and 8 threads, clean and under faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod check;
pub mod export;
pub mod sync;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use buffer::{EventKind, TraceBuf};
use sync::StdSync;

/// Salt for the journey-sampler derivation (distinct from the fault
/// injector's `0xfa17_1e57` so the two decision streams never collide).
const JOURNEY_SALT: u64 = 0x70ac_e704;

/// splitmix64 finalizer — the same stateless mix
/// `ah_simnet::rng::hash64` uses, duplicated here so ah-trace stays
/// zero-dependency. Byte-for-byte the same function, pinned by a unit
/// test below.
fn hash64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Does `name` satisfy the `ah_<crate>_<subsystem>_<name>` scheme?
///
/// The predicate is intentionally identical to
/// `ah_obs::valid_metric_name` (duplicated so ah-trace stays
/// zero-dependency): at least four `_`-separated segments, the first
/// exactly `ah`, every segment non-empty lowercase ASCII alphanumerics.
/// ah-lint enforces it statically on span/track name literals; the
/// Chrome-trace validator ([`check::validate_chrome_trace`]) enforces
/// it on emitted traces.
pub fn valid_trace_name(name: &str) -> bool {
    let segments: Vec<&str> = name.split('_').collect();
    if segments.len() < 4 || segments[0] != "ah" {
        return false;
    }
    segments
        .iter()
        .all(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()))
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Seed for the journey sampler (typically the scenario seed, so a
    /// run's sampled sources are reproducible).
    pub seed: u64,
    /// Sample one in this many source IPs for end-to-end journeys
    /// (`0` disables journeys, `1` samples every source).
    pub sample_one_in: u64,
    /// Per-thread buffer capacity in events.
    pub buf_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { seed: 0, sample_one_in: 64, buf_capacity: 1 << 16 }
    }
}

/// Interned span-name table.
#[derive(Default)]
struct Names {
    by_name: BTreeMap<&'static str, u32>,
    list: Vec<&'static str>,
}

/// One registered per-thread track.
struct Track {
    label: String,
    buf: Arc<TraceBuf<StdSync>>,
}

struct Inner {
    epoch: Instant,
    cfg: TraceConfig,
    names: Mutex<Names>,
    tracks: Mutex<Vec<Track>>,
}

/// One per-thread registration: the owning tracer (weak, so a dropped
/// tracer's entries can be pruned), the thread's buffer, and its track id.
type ThreadReg = (Weak<Inner>, Arc<TraceBuf<StdSync>>, u32);

thread_local! {
    /// Per-thread cache of [`ThreadReg`] registrations so the hot emit
    /// path is a vector probe, not a mutex. Entries for dead tracers
    /// are pruned on miss via the `Weak`.
    static THREAD_BUFS: RefCell<Vec<ThreadReg>> = const { RefCell::new(Vec::new()) };
}

/// Handle to the tracing subsystem. Cheap to clone; a disabled tracer
/// ([`Tracer::noop`]) is `None` all the way down, so every operation on
/// it is a single branch.
#[derive(Clone)]
pub struct Tracer(Option<Arc<Inner>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Tracer(noop)"),
            Some(inner) => f
                .debug_struct("Tracer")
                .field("sample_one_in", &inner.cfg.sample_one_in)
                .field("buf_capacity", &inner.cfg.buf_capacity)
                .finish(),
        }
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::noop()
    }
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op behind one branch.
    pub fn noop() -> Tracer {
        Tracer(None)
    }

    /// A live tracer collecting into per-thread buffers.
    pub fn new(cfg: TraceConfig) -> Tracer {
        Tracer(Some(Arc::new(Inner {
            epoch: Instant::now(),
            cfg,
            names: Mutex::new(Names::default()),
            tracks: Mutex::new(Vec::new()),
        })))
    }

    /// Is this tracer collecting?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Journey id for a source IP: non-zero iff the source is sampled.
    ///
    /// Pure function of `(cfg.seed, src)` in the
    /// `packet_decision_seed` derivation idiom — no RNG draws, no
    /// state, so calling it any number of times cannot perturb the
    /// simulation. The id is `src + 1` (never `0`, which means "not on
    /// a journey").
    pub fn journey_id(&self, src: u32) -> u64 {
        let Some(inner) = &self.0 else { return 0 };
        let n = inner.cfg.sample_one_in;
        if n == 0 {
            return 0;
        }
        let h = hash64(hash64(inner.cfg.seed ^ JOURNEY_SALT) ^ u64::from(src));
        if h.is_multiple_of(n) {
            u64::from(src) + 1
        } else {
            0
        }
    }

    /// Open a span on the current thread's track; the returned guard
    /// emits the matching end event when dropped. Nesting of guards on
    /// one track is the parent/child relation.
    #[must_use = "dropping the guard immediately records a zero-length span"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.begin(name, 0)
    }

    /// Open a span tagged with a journey id (from
    /// [`Tracer::journey_id`]); `0` degrades to a plain span.
    #[must_use = "dropping the guard immediately records a zero-length span"]
    pub fn journey_span(&self, name: &'static str, journey: u64) -> SpanGuard {
        self.begin(name, journey)
    }

    /// Record an instantaneous event on the current thread's track.
    pub fn instant(&self, name: &'static str) {
        self.emit(EventKind::Instant, name, 0);
    }

    /// Record an instantaneous event tagged with a journey id.
    pub fn journey_instant(&self, name: &'static str, journey: u64) {
        self.emit(EventKind::Instant, name, journey);
    }

    /// Name the current thread's track `<name>/<index>` (e.g.
    /// `ah_pipeline_shard_worker/3`). The base name follows the span
    /// naming scheme and is lint-checked like any other trace literal.
    pub fn set_track(&self, name: &'static str, index: u64) {
        let Some(inner) = &self.0 else { return };
        debug_assert!(valid_trace_name(name), "track name {name:?} violates the naming scheme");
        let (_, track_id) = thread_buf(inner);
        if let Ok(mut tracks) = inner.tracks.lock() {
            if let Some(track) = tracks.get_mut(track_id as usize) {
                track.label = format!("{name}/{index}");
            }
        }
    }

    /// Total events dropped across all tracks (buffer overflow).
    pub fn dropped(&self) -> u64 {
        let Some(inner) = &self.0 else { return 0 };
        match inner.tracks.lock() {
            Ok(tracks) => tracks.iter().map(|t| t.buf.dropped()).sum(),
            Err(_) => 0,
        }
    }

    /// Snapshot every track's published events for export.
    pub fn snapshot(&self) -> export::TraceSnapshot {
        let Some(inner) = &self.0 else {
            return export::TraceSnapshot::default();
        };
        let names: Vec<String> = match inner.names.lock() {
            Ok(n) => n.list.iter().map(|s| s.to_string()).collect(),
            Err(_) => Vec::new(),
        };
        let mut tracks = Vec::new();
        let mut dropped = 0;
        if let Ok(regs) = inner.tracks.lock() {
            for (tid, track) in regs.iter().enumerate() {
                dropped += track.buf.dropped();
                let events = track
                    .buf
                    .snapshot()
                    .into_iter()
                    .map(|ev| export::TraceEvent {
                        kind: ev.kind,
                        name: names
                            .get(ev.name_id as usize)
                            .cloned()
                            .unwrap_or_else(|| "ah_trace_name_unknown".to_string()),
                        ts_ns: ev.ts_ns,
                        seq: ev.seq,
                        journey: ev.journey,
                    })
                    .collect();
                tracks.push(export::TrackSnapshot {
                    label: track.label.clone(),
                    tid: tid as u32,
                    events,
                });
            }
        }
        export::TraceSnapshot { tracks, dropped }
    }

    fn begin(&self, name: &'static str, journey: u64) -> SpanGuard {
        let Some(inner) = &self.0 else { return SpanGuard { end: None } };
        let name_id = self.emit_inner(inner, EventKind::Begin, name, journey);
        SpanGuard { end: Some((Arc::clone(inner), name_id, journey)) }
    }

    fn emit(&self, kind: EventKind, name: &'static str, journey: u64) {
        if let Some(inner) = &self.0 {
            self.emit_inner(inner, kind, name, journey);
        }
    }

    fn emit_inner(
        &self,
        inner: &Arc<Inner>,
        kind: EventKind,
        name: &'static str,
        journey: u64,
    ) -> u32 {
        debug_assert!(valid_trace_name(name), "span name {name:?} violates the naming scheme");
        let name_id = intern(inner, name);
        let (buf, _) = thread_buf(inner);
        let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
        buf.push(kind, name_id, ts_ns, journey);
        name_id
    }
}

/// RAII span guard: emits the end event on drop (on whatever thread
/// drops it — in practice the thread that opened it, which keeps the
/// begin/end pair on one track).
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    end: Option<(Arc<Inner>, u32, u64)>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpanGuard(live: {})", self.end.is_some())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, name_id, journey)) = self.end.take() {
            let (buf, _) = thread_buf(&inner);
            let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
            buf.push(EventKind::End, name_id, ts_ns, journey);
        }
    }
}

/// Intern a span name, returning its stable id.
fn intern(inner: &Arc<Inner>, name: &'static str) -> u32 {
    let Ok(mut names) = inner.names.lock() else { return 0 };
    if let Some(&id) = names.by_name.get(name) {
        return id;
    }
    let id = names.list.len() as u32;
    names.list.push(name);
    names.by_name.insert(name, id);
    id
}

/// The current thread's buffer for `inner`, registering one on first
/// use. Returns the buffer and its track id.
fn thread_buf(inner: &Arc<Inner>) -> (Arc<TraceBuf<StdSync>>, u32) {
    THREAD_BUFS.with(|cell| {
        let mut cache = cell.borrow_mut();
        for (weak, buf, tid) in cache.iter() {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, inner) {
                    return (Arc::clone(buf), *tid);
                }
            }
        }
        cache.retain(|(weak, _, _)| weak.strong_count() > 0);
        let buf = Arc::new(TraceBuf::new(inner.cfg.buf_capacity));
        let tid = match inner.tracks.lock() {
            Ok(mut tracks) => {
                let tid = tracks.len() as u32;
                tracks.push(Track {
                    label: format!("ah_trace_track_anon/{tid}"),
                    buf: Arc::clone(&buf),
                });
                tid
            }
            Err(_) => 0,
        };
        cache.push((Arc::downgrade(inner), Arc::clone(&buf), tid));
        (buf, tid)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_matches_simnet_idiom() {
        // Pin the splitmix64 finalizer to the exact values
        // ah_simnet::rng::hash64 produces, so the derivation idiom in
        // the docs stays literally true.
        assert_eq!(hash64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(hash64(1), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn name_scheme_matches_obs() {
        assert!(valid_trace_name("ah_pipeline_dispatch_route"));
        assert!(valid_trace_name("ah_wal_writer_fsync"));
        assert!(!valid_trace_name("ah_pipeline_route")); // 3 segments
        assert!(!valid_trace_name("xx_pipeline_dispatch_route"));
        assert!(!valid_trace_name("ah_pipeline_dispatch_Route"));
        assert!(!valid_trace_name("ah__dispatch_route"));
    }

    #[test]
    fn noop_tracer_is_inert() {
        let tr = Tracer::noop();
        assert!(!tr.is_enabled());
        assert_eq!(tr.journey_id(42), 0);
        let g = tr.span("ah_test_noop_span");
        drop(g);
        tr.instant("ah_test_noop_instant");
        assert_eq!(tr.snapshot().tracks.len(), 0);
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn spans_nest_and_export() {
        let tr = Tracer::new(TraceConfig { seed: 1, sample_one_in: 1, buf_capacity: 64 });
        tr.set_track("ah_test_track_main", 0);
        {
            let _outer = tr.span("ah_test_span_outer");
            let _inner = tr.span("ah_test_span_inner");
            tr.instant("ah_test_mark_here");
        }
        let snap = tr.snapshot();
        assert_eq!(snap.tracks.len(), 1);
        assert_eq!(snap.tracks[0].label, "ah_test_track_main/0");
        let kinds: Vec<EventKind> = snap.tracks[0].events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Begin,
                EventKind::Begin,
                EventKind::Instant,
                EventKind::End,
                EventKind::End
            ]
        );
        // LIFO drop order: inner ends before outer.
        assert_eq!(snap.tracks[0].events[3].name, "ah_test_span_inner");
        assert_eq!(snap.tracks[0].events[4].name, "ah_test_span_outer");
        // Logical sequence is the buffer index.
        let seqs: Vec<u64> = snap.tracks[0].events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn journey_sampling_is_pure_and_seeded() {
        let tr = Tracer::new(TraceConfig { seed: 7, sample_one_in: 4, buf_capacity: 16 });
        let sampled: Vec<u32> = (0..1000).filter(|&s| tr.journey_id(s) != 0).collect();
        // Deterministic: same seed, same set.
        let tr2 = Tracer::new(TraceConfig { seed: 7, sample_one_in: 4, buf_capacity: 16 });
        let sampled2: Vec<u32> = (0..1000).filter(|&s| tr2.journey_id(s) != 0).collect();
        assert_eq!(sampled, sampled2);
        // Roughly 1/4 (loose bounds: the mix is uniform).
        assert!(sampled.len() > 150 && sampled.len() < 350, "{}", sampled.len());
        // Different seed, different set.
        let tr3 = Tracer::new(TraceConfig { seed: 8, sample_one_in: 4, buf_capacity: 16 });
        let sampled3: Vec<u32> = (0..1000).filter(|&s| tr3.journey_id(s) != 0).collect();
        assert_ne!(sampled, sampled3);
        // Ids are src + 1, never zero.
        for &s in &sampled {
            assert_eq!(tr.journey_id(s), u64::from(s) + 1);
        }
    }

    #[test]
    fn per_thread_tracks_register_independently() {
        let tr = Tracer::new(TraceConfig { seed: 0, sample_one_in: 0, buf_capacity: 16 });
        tr.instant("ah_test_mark_main");
        let tr2 = tr.clone();
        std::thread::spawn(move || {
            tr2.set_track("ah_test_track_worker", 1);
            tr2.instant("ah_test_mark_worker");
        })
        .join()
        .expect("worker thread");
        let snap = tr.snapshot();
        assert_eq!(snap.tracks.len(), 2);
        let labels: Vec<&str> = snap.tracks.iter().map(|t| t.label.as_str()).collect();
        assert!(labels.contains(&"ah_test_track_worker/1"));
    }
}
