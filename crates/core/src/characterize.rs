//! Longitudinal characterization of aggressive hitters: origins
//! (Table 5), targeted ports with tool attribution (Figure 4), protocol
//! mixes in darknet vs flow data (Table 3), temporal trends (Figure 3),
//! flow-vs-darknet port overlap (Figure 5), and traffic concentration
//! (Figure 6 right).

use crate::defs::Definition;
use crate::detector::AhReport;
use crate::impact::flow_scan_bucket;
use ah_flow::record::FlowRecord;
use ah_intel::acked::AckedScanners;
use ah_intel::asn::AsnDb;
use ah_intel::rdns::RdnsTable;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::ScanClass;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One row of the origins table (Table 5).
#[derive(Debug, Clone)]
pub struct OriginRow {
    /// "Cloud (US)"-style label; the paper anonymizes org names.
    pub label: String,
    /// Underlying organization name (simulator ground truth).
    pub org: String,
    /// Distinct hitter IPs attributed to the origin.
    pub unique_ips: u64,
    /// Distinct hitter /24s attributed to the origin.
    pub unique_24s: u64,
    /// Scanning packets attributed to the origin.
    pub packets: u64,
    /// How many of the IPs / /24s are acknowledged scanners.
    pub acked_ips: u64,
    /// Acknowledged-scanner /24s among `unique_24s`.
    pub acked_24s: u64,
}

/// Totals row of Table 5: top-N sums and their share of the whole
/// population.
#[derive(Debug, Clone)]
pub struct OriginTotals {
    /// Hitter IPs covered by the top-N origins.
    pub top_ips: u64,
    /// `top_ips` as a fraction of all hitter IPs.
    pub top_ips_share: f64,
    /// Hitter /24s covered by the top-N origins.
    pub top_24s: u64,
    /// `top_24s` as a fraction of all hitter /24s.
    pub top_24s_share: f64,
    /// Packets covered by the top-N origins.
    pub top_packets: u64,
    /// `top_packets` as a fraction of all hitter packets.
    pub top_packets_share: f64,
}

/// Build the top-`n` origins table for a definition.
pub fn origin_table(
    report: &AhReport,
    def: Definition,
    db: &AsnDb,
    acked: &AckedScanners,
    rdns: &RdnsTable,
    n: usize,
) -> (Vec<OriginRow>, OriginTotals) {
    struct Acc {
        label: String,
        ips: HashSet<Ipv4Addr4>,
        acked_ips: HashSet<Ipv4Addr4>,
        packets: u64,
    }
    let mut per_org: HashMap<String, Acc> = HashMap::new();
    let mut all_ips: HashSet<Ipv4Addr4> = HashSet::new();
    let mut all_24s: HashSet<Ipv4Addr4> = HashSet::new();
    let mut all_packets = 0u64;
    // Packets per source, over hitter events only.
    let mut pkts_by_src: HashMap<Ipv4Addr4, u64> = HashMap::new();
    for r in report.hitter_records(def) {
        *pkts_by_src.entry(r.src).or_default() += u64::from(r.packets);
    }
    for ip in report.hitters(def) {
        let pkts = pkts_by_src.get(ip).copied().unwrap_or(0);
        all_ips.insert(*ip);
        all_24s.insert(ip.slash24());
        all_packets += pkts;
        let Some(info) = db.lookup(*ip) else { continue };
        let acc = per_org.entry(info.org.clone()).or_insert_with(|| Acc {
            label: format!("{} ({})", info.as_type.label(), info.country),
            ips: HashSet::new(),
            acked_ips: HashSet::new(),
            packets: 0,
        });
        acc.ips.insert(*ip);
        acc.packets += pkts;
        if acked.matches(*ip, rdns).is_some() {
            acc.acked_ips.insert(*ip);
        }
    }
    let mut rows: Vec<OriginRow> = per_org
        .into_iter()
        .map(|(org, acc)| OriginRow {
            label: acc.label,
            org,
            unique_ips: acc.ips.len() as u64,
            unique_24s: acc.ips.iter().map(|i| i.slash24()).collect::<HashSet<_>>().len() as u64,
            packets: acc.packets,
            acked_ips: acc.acked_ips.len() as u64,
            acked_24s: acc.acked_ips.iter().map(|i| i.slash24()).collect::<HashSet<_>>().len()
                as u64,
        })
        .collect();
    rows.sort_by(|a, b| b.unique_ips.cmp(&a.unique_ips).then(a.org.cmp(&b.org)));
    rows.truncate(n);
    let top_ips: u64 = rows.iter().map(|r| r.unique_ips).sum();
    let top_24s: u64 = rows.iter().map(|r| r.unique_24s).sum();
    let top_packets: u64 = rows.iter().map(|r| r.packets).sum();
    let totals = OriginTotals {
        top_ips,
        top_ips_share: ratio(top_ips, all_ips.len() as u64),
        top_24s,
        top_24s_share: ratio(top_24s, all_24s.len() as u64),
        top_packets,
        top_packets_share: ratio(top_packets, all_packets),
    };
    (rows, totals)
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// One targeted service in Figure 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortRow {
    /// Traffic type of the service.
    pub class: ScanClass,
    /// Destination port (0 for ICMP).
    pub port: u16,
    /// Packets with the ZMap fingerprint.
    pub zmap: u64,
    /// Packets with the Masscan fingerprint.
    pub masscan: u64,
    /// Packets with neither fingerprint.
    pub other: u64,
}

impl PortRow {
    /// All packets targeting the service.
    pub fn total(&self) -> u64 {
        self.zmap + self.masscan + self.other
    }

    /// "tcp/6379"-style label; ICMP renders as "icmp/echo".
    pub fn label(&self) -> String {
        match self.class {
            ScanClass::TcpSyn => format!("tcp/{}", self.port),
            ScanClass::Udp => format!("udp/{}", self.port),
            ScanClass::IcmpEcho => "icmp/echo".to_string(),
        }
    }
}

/// Top-`n` ports targeted by a definition's hitters, with per-tool packet
/// attribution (Figure 4).
pub fn top_ports(report: &AhReport, def: Definition, n: usize) -> Vec<PortRow> {
    let mut map: HashMap<(ScanClass, u16), (u64, u64, u64)> = HashMap::new();
    for r in report.hitter_records(def) {
        let key = (r.class, if r.class == ScanClass::IcmpEcho { 0 } else { r.dst_port });
        let e = map.entry(key).or_default();
        e.0 += u64::from(r.zmap);
        e.1 += u64::from(r.masscan);
        e.2 += u64::from(r.other_packets());
    }
    let mut rows: Vec<PortRow> = map
        .into_iter()
        .map(|((class, port), (zmap, masscan, other))| PortRow {
            class,
            port,
            zmap,
            masscan,
            other,
        })
        .collect();
    rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.port.cmp(&b.port)));
    rows.truncate(n);
    rows
}

/// Packet shares per scanning class [TCP-SYN, UDP, ICMP-echo], in percent.
pub type ProtocolMix = [f64; 3];

/// Darknet-side protocol mix of a definition's hitters (Table 3 "D"
/// columns), over events starting in `days` (pass `None` for the whole
/// dataset).
pub fn protocol_mix_darknet(
    report: &AhReport,
    def: Definition,
    days: Option<std::ops::Range<u64>>,
) -> ProtocolMix {
    let mut counts = [0u64; 3];
    for r in report.hitter_records(def) {
        if let Some(range) = &days {
            if !range.contains(&u64::from(r.start_day)) {
                continue;
            }
        }
        let i = match r.class {
            ScanClass::TcpSyn => 0,
            ScanClass::Udp => 1,
            ScanClass::IcmpEcho => 2,
        };
        counts[i] += u64::from(r.packets);
    }
    to_pct(counts)
}

/// Flow-side protocol mix of hitter-originated flows (Table 3 "F"
/// columns).
pub fn protocol_mix_flow(records: &[FlowRecord], hitters: &HashSet<Ipv4Addr4>) -> ProtocolMix {
    let mut counts = [0u64; 3];
    for r in records {
        if !hitters.contains(&r.key.src) {
            continue;
        }
        if let Some(i) = flow_scan_bucket(r) {
            counts[i] += r.packets;
        }
    }
    to_pct(counts)
}

fn to_pct(counts: [u64; 3]) -> ProtocolMix {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return [0.0; 3];
    }
    [
        100.0 * counts[0] as f64 / total as f64,
        100.0 * counts[1] as f64 / total as f64,
        100.0 * counts[2] as f64 / total as f64,
    ]
}

/// One day of the Figure 3 time series.
#[derive(Debug, Clone, Copy)]
pub struct TrendDay {
    /// Day index within the run.
    pub day: u64,
    /// Hitters active this day (may have started earlier).
    pub active_ah: u64,
    /// Hitters that started qualifying activity this day.
    pub daily_ah: u64,
    /// All scanning sources with events starting this day.
    pub all_sources: u64,
    /// Packets from daily hitters.
    pub ah_packets: u64,
    /// All scanning packets in events starting this day.
    pub all_packets: u64,
}

/// The Figure 3 series for a definition.
pub fn trends(report: &AhReport, def: Definition, days: u64) -> Vec<TrendDay> {
    (0..days)
        .map(|day| TrendDay {
            day,
            active_ah: report.active_hitters(def, day).map_or(0, HashSet::len) as u64,
            daily_ah: report.daily_hitters(def, day).map_or(0, HashSet::len) as u64,
            all_sources: report.day_all_sources.get(&day).copied().unwrap_or(0),
            ah_packets: report.ah_packets(def, day),
            all_packets: report.day_all_packets.get(&day).copied().unwrap_or(0),
        })
        .collect()
}

/// Figure 5: per-port packet counts seen from a day's hitters in the
/// darknet vs in flow data. Returns (label, darknet packets, estimated
/// flow packets) per port observed in either.
pub fn port_overlap(
    report: &AhReport,
    def: Definition,
    day: u64,
    flow_records: &[FlowRecord],
    sampling_rate: u64,
) -> Vec<(String, u64, u64)> {
    let empty = HashSet::new();
    let hitters = report.daily_hitters(def, day).unwrap_or(&empty);
    let mut dark: BTreeMap<(u8, u16), u64> = BTreeMap::new();
    for r in report.records() {
        if u64::from(r.start_day) == day && hitters.contains(&r.src) {
            let proto = match r.class {
                ScanClass::TcpSyn => 6u8,
                ScanClass::Udp => 17,
                ScanClass::IcmpEcho => 1,
            };
            *dark.entry((proto, r.dst_port)).or_default() += u64::from(r.packets);
        }
    }
    let mut flow: BTreeMap<(u8, u16), u64> = BTreeMap::new();
    for r in flow_records {
        if r.day() == day && hitters.contains(&r.key.src) && flow_scan_bucket(r).is_some() {
            *flow.entry((r.key.protocol, r.key.dst_port)).or_default() += r.packets * sampling_rate;
        }
    }
    let keys: std::collections::BTreeSet<(u8, u16)> =
        dark.keys().chain(flow.keys()).copied().collect();
    keys.into_iter()
        .map(|k| {
            let label = match k.0 {
                6 => format!("tcp/{}", k.1),
                17 => format!("udp/{}", k.1),
                _ => "icmp/echo".to_string(),
            };
            (label, dark.get(&k).copied().unwrap_or(0), flow.get(&k).copied().unwrap_or(0))
        })
        .collect()
}

/// Figure 6 (right): cumulative share of daily-hitter traffic by ranked
/// source. Returns the cumulative percentages (index i = top-(i+1) IPs).
pub fn zipf_concentration(report: &AhReport, def: Definition) -> Vec<f64> {
    let mut pkts_by_src: HashMap<Ipv4Addr4, u64> = HashMap::new();
    for r in report.hitter_records(def) {
        *pkts_by_src.entry(r.src).or_default() += u64::from(r.packets);
    }
    let mut counts: Vec<u64> = pkts_by_src.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0u64;
    counts
        .into_iter()
        .map(|c| {
            acc += c;
            100.0 * acc as f64 / total as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Detector, DetectorConfig};
    use ah_intel::asn::{AsInfo, AsType, CountryCode};
    use ah_net::time::{Dur, Ts};
    use ah_telescope::event::{DarknetEvent, EventKey, ToolCounts};

    const DARK: u32 = 1000;

    fn event(
        src: u8,
        port: u16,
        day: u64,
        packets: u64,
        unique: u32,
        tools: ToolCounts,
    ) -> DarknetEvent {
        DarknetEvent {
            key: EventKey {
                src: Ipv4Addr4::new(100, 64, 0, src),
                dst_port: port,
                class: ScanClass::TcpSyn,
            },
            start: Ts::from_days(day) + Dur::from_secs(30),
            end: Ts::from_days(day) + Dur::from_secs(90),
            packets,
            bytes: packets * 40,
            unique_dsts: unique,
            dark_size: DARK,
            tools,
        }
    }

    fn zmap_tools(n: u64) -> ToolCounts {
        ToolCounts { zmap: n, ..Default::default() }
    }

    fn report_with(evts: Vec<DarknetEvent>) -> AhReport {
        let mut d = Detector::new(DetectorConfig::new(DARK));
        d.ingest_all(&evts);
        d.finalize()
    }

    fn db() -> AsnDb {
        let mut db = AsnDb::new();
        db.announce(
            "100.64.0.0/25".parse().unwrap(),
            AsInfo {
                asn: 1,
                org: "CloudA".into(),
                as_type: AsType::Cloud,
                country: CountryCode::new(b"US"),
            },
        );
        db.announce(
            "100.64.0.128/25".parse().unwrap(),
            AsInfo {
                asn: 2,
                org: "IspB".into(),
                as_type: AsType::Isp,
                country: CountryCode::new(b"CN"),
            },
        );
        db
    }

    #[test]
    fn origins_aggregate_and_rank() {
        // Two hitters in CloudA, one in IspB.
        let r = report_with(vec![
            event(1, 23, 0, 900, 200, zmap_tools(900)),
            event(2, 23, 0, 500, 150, ToolCounts::default()),
            event(200, 23, 0, 700, 180, ToolCounts::default()),
        ]);
        let acked = AckedScanners::new(vec![]);
        let rdns = RdnsTable::new();
        let (rows, totals) =
            origin_table(&r, Definition::AddressDispersion, &db(), &acked, &rdns, 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].org, "CloudA");
        assert_eq!(rows[0].unique_ips, 2);
        assert_eq!(rows[0].label, "Cloud (US)");
        assert_eq!(rows[0].packets, 1400);
        assert_eq!(rows[1].org, "IspB");
        assert_eq!(totals.top_ips, 3);
        assert!((totals.top_ips_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_ports_with_tool_split() {
        let r = report_with(vec![
            event(1, 6379, 0, 900, 200, zmap_tools(900)),
            event(2, 6379, 0, 600, 150, ToolCounts { masscan: 600, ..Default::default() }),
            event(3, 23, 0, 500, 150, ToolCounts { mirai: 500, ..Default::default() }),
        ]);
        let rows = top_ports(&r, Definition::AddressDispersion, 10);
        assert_eq!(rows[0].port, 6379);
        assert_eq!(rows[0].zmap, 900);
        assert_eq!(rows[0].masscan, 600);
        assert_eq!(rows[0].total(), 1500);
        assert_eq!(rows[0].label(), "tcp/6379");
        // Mirai lands in "other" for Figure 4.
        assert_eq!(rows[1].port, 23);
        assert_eq!(rows[1].other, 500);
    }

    #[test]
    fn darknet_protocol_mix() {
        let mut udp_ev = event(1, 53, 0, 100, 150, ToolCounts::default());
        udp_ev.key.class = ScanClass::Udp;
        let r = report_with(vec![event(1, 23, 0, 900, 200, ToolCounts::default()), udp_ev]);
        let mix = protocol_mix_darknet(&r, Definition::AddressDispersion, None);
        assert!((mix[0] - 90.0).abs() < 1e-9);
        assert!((mix[1] - 10.0).abs() < 1e-9);
        assert_eq!(mix[2], 0.0);
    }

    #[test]
    fn trend_series() {
        let r = report_with(vec![
            event(1, 23, 0, 900, 200, ToolCounts::default()),
            event(2, 23, 1, 800, 180, ToolCounts::default()),
            event(3, 23, 1, 10, 2, ToolCounts::default()), // non-hitter
        ]);
        let t = trends(&r, Definition::AddressDispersion, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].daily_ah, 1);
        assert_eq!(t[1].daily_ah, 1);
        assert_eq!(t[1].all_sources, 2);
        assert_eq!(t[1].ah_packets, 800);
        assert_eq!(t[1].all_packets, 810);
        assert_eq!(t[2].daily_ah, 0);
    }

    #[test]
    fn zipf_is_monotone_to_100() {
        let r = report_with(vec![
            event(1, 23, 0, 1000, 200, ToolCounts::default()),
            event(2, 23, 0, 600, 180, ToolCounts::default()),
            event(3, 23, 0, 400, 150, ToolCounts::default()),
        ]);
        let z = zipf_concentration(&r, Definition::AddressDispersion);
        assert_eq!(z.len(), 3);
        assert!((z[0] - 50.0).abs() < 1e-9);
        assert!((z[2] - 100.0).abs() < 1e-9);
        assert!(z.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn port_overlap_counts_only_same_day_hitter_scan_flows() {
        use ah_flow::record::FlowKey;
        use ah_flow::router::Direction;

        let r = report_with(vec![event(1, 23, 0, 900, 200, zmap_tools(900))]);
        let hitter = Ipv4Addr4::new(100, 64, 0, 1);
        let stranger = Ipv4Addr4::new(100, 64, 0, 77);
        let flow = |src: Ipv4Addr4, day: u64, tcp_flags: u8, packets: u64| FlowRecord {
            key: FlowKey {
                src,
                dst: Ipv4Addr4::new(9, 9, 9, 9),
                src_port: 40000,
                dst_port: 23,
                protocol: 6,
            },
            router: 0,
            direction: Direction::Ingress,
            first: Ts::from_days(day) + Dur::from_secs(10),
            last: Ts::from_days(day) + Dur::from_secs(20),
            packets,
            bytes: packets * 40,
            tcp_flags,
        };
        let flows = vec![
            // Counts: day 0, known hitter, SYN-only (the TCP scan bucket).
            flow(hitter, 0, 0x02, 5),
            // Wrong day: same hitter, same bucket, day 1.
            flow(hitter, 1, 0x02, 7),
            // Not a hitter: day 0, same bucket.
            flow(stranger, 0, 0x02, 11),
            // Not a scan bucket: day 0 hitter, SYN+ACK flags.
            flow(hitter, 0, 0x12, 13),
        ];
        let rows = port_overlap(&r, Definition::AddressDispersion, 0, &flows, 10);
        assert_eq!(rows.len(), 1, "{rows:?}");
        let (label, dark, flow_pkts) = &rows[0];
        assert_eq!(label, "tcp/23");
        assert_eq!(*dark, 900);
        // Only record one survives every filter: 5 packets * sampling rate 10.
        assert_eq!(*flow_pkts, 50);
    }

    #[test]
    fn empty_report_characterizations() {
        let r = report_with(vec![]);
        assert!(top_ports(&r, Definition::AddressDispersion, 5).is_empty());
        assert!(zipf_concentration(&r, Definition::AddressDispersion).is_empty());
        let mix = protocol_mix_darknet(&r, Definition::AddressDispersion, None);
        assert_eq!(mix, [0.0; 3]);
    }
}
