//! A small token-level lexer for Rust source.
//!
//! This is deliberately *not* a parser: the lints in this crate are
//! token-pattern checks, so all the lexer must get right is the hard
//! part of tokenization — knowing what is code and what is not.
//! Comments (line, nested block, doc), string literals (cooked, raw,
//! byte, raw byte), char literals versus lifetimes, and raw
//! identifiers are all recognized exactly, so an `unwrap` inside a
//! string or a `panic!` inside a comment can never trip a lint.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are unescaped: `r#type`
    /// lexes as `type`).
    Ident(String),
    /// Single punctuation character.
    Punct(char),
    /// String literal (cooked, raw, byte, or raw byte); the content
    /// between the quotes, escapes left as written.
    Str(String),
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`) or the placeholder lifetime (`'_`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// Non-doc comment (`//` or `/* */`); the text without delimiters.
    Comment(String),
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`); text without
    /// delimiters.
    DocComment(String),
}

/// A token plus the 1-based line it starts on and its byte span.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character in the source.
    pub start: usize,
    /// Byte offset one past the token's last character (so
    /// `&src[start..end]` is the token's exact source text, including
    /// any delimiters a payload-carrying kind strips).
    pub end: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. The lexer is total: any byte sequence produces a
/// token stream (unterminated literals run to end of file), because a
/// linter must keep going where a compiler would stop.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { b: src.as_bytes(), src, i: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let line = self.line;
            let start = self.i;
            let before = self.out.len();
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => {
                    let s = self.cooked_string();
                    self.push(Tok::Str(s), line);
                }
                b'\'' => self.char_or_lifetime(line),
                b'r' | b'b' if self.literal_prefix() => self.prefixed_literal(line),
                _ if is_ident_start(c) => {
                    let id = self.ident();
                    self.push(Tok::Ident(id), line);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.push(Tok::Num, line);
                }
                _ => {
                    self.push(Tok::Punct(c as char), line);
                    self.i += 1;
                }
            }
            // Each arm pushes at most one token; stamp its byte span
            // here so the handlers stay span-agnostic.
            if self.out.len() > before {
                let end = self.i;
                if let Some(tok) = self.out.last_mut() {
                    tok.start = start;
                    tok.end = end;
                }
            }
        }
        self.out
    }

    fn peek(&self, n: usize) -> Option<u8> {
        self.b.get(self.i + n).copied()
    }

    fn push(&mut self, kind: Tok, line: u32) {
        // start/end are stamped by `run` once the handler returns.
        self.out.push(Token { kind, line, start: 0, end: 0 });
    }

    fn bump_line_counter(&mut self, from: usize, to: usize) {
        self.line += self.b[from..to].iter().filter(|&&b| b == b'\n').count() as u32;
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        // `////…` separators count as plain comments, like rustdoc does.
        let kind =
            if (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!") {
                Tok::DocComment(text[3..].to_string())
            } else {
                Tok::Comment(text.trim_start_matches('/').to_string())
            };
        self.push(kind, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i;
        self.i += 2;
        let doc =
            matches!(self.b.get(self.i), Some(&b'*') | Some(&b'!')) && self.peek(1) != Some(b'/'); // `/**/` is not a doc comment
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        let text = self.src[start..self.i]
            .trim_start_matches("/*")
            .trim_start_matches(['*', '!'])
            .trim_end_matches("*/")
            .to_string();
        self.bump_line_counter(start, self.i);
        self.push(if doc { Tok::DocComment(text) } else { Tok::Comment(text) }, line);
    }

    /// Cooked string starting at the opening quote; returns the content.
    fn cooked_string(&mut self) -> String {
        let start = self.i + 1;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => break,
                _ => self.i += 1,
            }
        }
        let end = self.i.min(self.b.len());
        let content = self.src[start..end].to_string();
        self.bump_line_counter(start, end);
        self.i = (end + 1).min(self.b.len());
        content
    }

    /// True when the `r`/`b` at the cursor starts a literal rather than
    /// an identifier: `r"`, `r#"`, `b"`, `b'`, `br`, `rb` forms.
    fn literal_prefix(&self) -> bool {
        let mut j = self.i;
        // Up to two prefix letters (b, r, br, rb — rb isn't real Rust
        // but accepting it is harmless).
        let mut letters = 0;
        while letters < 2 && matches!(self.b.get(j), Some(&b'r') | Some(&b'b')) {
            j += 1;
            letters += 1;
        }
        let mut hashes = false;
        while self.b.get(j) == Some(&b'#') {
            j += 1;
            hashes = true;
        }
        match self.b.get(j) {
            Some(&b'"') => true,
            // b'x' byte literal; a raw identifier like r#type has no quote.
            Some(&b'\'') => !hashes && self.b[self.i] == b'b',
            _ => false,
        }
    }

    fn prefixed_literal(&mut self, line: u32) {
        let mut raw = false;
        while matches!(self.b.get(self.i), Some(&b'r') | Some(&b'b')) {
            raw |= self.b[self.i] == b'r';
            self.i += 1;
        }
        if !raw {
            // b"…" cooked byte string or b'…' byte char.
            if self.b.get(self.i) == Some(&b'"') {
                let s = self.cooked_string();
                self.push(Tok::Str(s), line);
            } else {
                self.byte_char();
                self.push(Tok::Char, line);
            }
            return;
        }
        let mut hashes = 0usize;
        while self.b.get(self.i) == Some(&b'#') {
            hashes += 1;
            self.i += 1;
        }
        // Opening quote.
        self.i += 1;
        let start = self.i;
        let closer: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
        while self.i < self.b.len() && !self.b[self.i..].starts_with(&closer) {
            self.i += 1;
        }
        let end = self.i.min(self.b.len());
        let content = self.src[start..end].to_string();
        self.bump_line_counter(start, end);
        self.i = (end + closer.len()).min(self.b.len());
        self.push(Tok::Str(content), line);
    }

    /// Byte char `b'x'` starting at the quote.
    fn byte_char(&mut self) {
        self.i += 1; // opening '
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // 'a' is a char; 'a (no closing quote after the ident) is a
        // lifetime; '\n' and '\u{…}' are chars.
        if self.peek(1) == Some(b'\\') {
            self.byte_char();
            self.push(Tok::Char, line);
            return;
        }
        if let Some(c1) = self.peek(1) {
            if is_ident_continue(c1) {
                let mut j = self.i + 2;
                while self.b.get(j).is_some_and(|&b| is_ident_continue(b)) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.push(Tok::Char, line);
                } else {
                    self.i = j;
                    self.push(Tok::Lifetime, line);
                }
                return;
            }
        }
        // ''' or stray quote: treat as a char-ish token, consume quote.
        self.byte_char();
        self.push(Tok::Char, line);
    }

    fn ident(&mut self) -> String {
        let mut start = self.i;
        // Raw identifier r#name.
        if self.b[self.i] == b'r' && self.peek(1) == Some(b'#') {
            self.i += 2;
            start = self.i;
        }
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.src[start..self.i].to_string()
    }

    fn number(&mut self) {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.i += 1;
            } else if c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // 1.5 continues the number; 1..5 and 1.method() do not.
                self.i += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_code() {
        let src = r##"
            // calls unwrap() in a comment
            /* panic! in /* nested */ block */
            let s = "x.unwrap()";
            let r = r#"panic!("hi")"#;
            let b = b"expect";
            real_ident();
        "##;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "let", "b", "real_ident"]);
    }

    #[test]
    fn chars_lifetimes_and_raw_idents() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let t = r#type; }";
        let ids = idents(src);
        assert!(ids.contains(&"type".to_string()), "raw ident unescapes");
        let kinds: Vec<_> = lex(src).into_iter().map(|t| t.kind).collect();
        assert_eq!(kinds.iter().filter(|k| matches!(k, Tok::Lifetime)).count(), 2);
        assert_eq!(kinds.iter().filter(|k| matches!(k, Tok::Char)).count(), 2);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n\"two\nline\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4, "line counter must advance past multi-line strings");
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let toks = lex("/// doc\n//! inner\n// plain\n//// separator\n/** block */\n/*!inner*/");
        let docs = toks.iter().filter(|t| matches!(t.kind, Tok::DocComment(_))).count();
        let plain = toks.iter().filter(|t| matches!(t.kind, Tok::Comment(_))).count();
        assert_eq!((docs, plain), (4, 2));
    }

    #[test]
    fn byte_spans_cover_the_source_exactly() {
        let src = "let x = r#\"raw\"# + 0x1f; // tail\n'a'";
        for t in lex(src) {
            assert!(t.start < t.end, "empty span for {:?}", t.kind);
            assert!(t.end <= src.len());
            let text = &src[t.start..t.end];
            match &t.kind {
                Tok::Ident(s) => assert_eq!(text, s),
                Tok::Str(s) => assert!(text.contains(s.as_str()), "{text} vs {s}"),
                Tok::Punct(c) => assert_eq!(text, c.to_string()),
                Tok::Comment(_) => assert!(text.starts_with("//")),
                _ => {}
            }
        }
    }

    #[test]
    fn spans_are_contiguous_outside_whitespace() {
        // Re-splicing every token's span text plus the gaps between
        // spans must reproduce the source byte-for-byte.
        let src = "fn f(a: u8) -> bool { a <= 3 && a != 0 /* c */ }";
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut cursor = 0;
        for t in &toks {
            rebuilt.push_str(&src[cursor..t.start]);
            rebuilt.push_str(&src[t.start..t.end]);
            cursor = t.end;
        }
        rebuilt.push_str(&src[cursor..]);
        assert_eq!(rebuilt, src);
        // And the gaps are pure whitespace: tokens never overlap or
        // swallow neighbouring code.
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlapping spans");
            assert!(src[prev_end..t.start].chars().all(char::is_whitespace));
            prev_end = t.end;
        }
    }

    #[test]
    fn spans_of_tricky_literals_are_exact() {
        // Byte-accurate spans over the forms the mutation harness must
        // never splice into: raw strings with `#` delimiters, byte
        // strings, escaped byte chars, labelled-loop lifetimes.
        let src = r###"let a = r##"x"## ; let b = b"y"; let c = b'\''; 'l: loop { break 'l; }"###;
        let toks = lex(src);
        let texts: Vec<&str> = toks.iter().map(|t| &src[t.start..t.end]).collect();
        assert!(texts.contains(&r###"r##"x"##"###), "{texts:?}");
        assert!(texts.contains(&r#"b"y""#), "{texts:?}");
        assert!(texts.contains(&r"b'\''"), "{texts:?}");
        assert_eq!(texts.iter().filter(|t| **t == "'l").count(), 2);
        let strs = toks.iter().filter(|t| matches!(t.kind, Tok::Str(_))).count();
        let lifetimes = toks.iter().filter(|t| matches!(t.kind, Tok::Lifetime)).count();
        assert_eq!((strs, lifetimes), (2, 2));
    }

    #[test]
    fn nested_block_comment_span_runs_to_outer_close() {
        let src = "a /* o /* i */ still */ b";
        let toks = lex(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(&src[toks[1].start..toks[1].end], "/* o /* i */ still */");
        assert!(matches!(toks[1].kind, Tok::Comment(_)));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("0..10 1.max(2) 3.5_f64");
        let puncts: Vec<char> = toks
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!['.', '.', '.', '(', ')']);
    }
}
