//! Lightweight telemetry for the measurement pipeline.
//!
//! Every long replay in this workspace (22 simulated months through the
//! serial or sharded engine) used to be a black box until the end-of-run
//! structs came back. This crate adds the missing live view: cheap
//! instruments the hot paths can update, and a snapshot exporter that
//! periodically serializes everything to JSONL and Prometheus
//! text-exposition files.
//!
//! # Design
//!
//! * [`Recorder`] is the single entry point: a cheap, cloneable handle.
//!   [`Recorder::noop`] produces a disabled recorder whose instruments
//!   are `None` inside — every update compiles to a branch on an
//!   `Option` discriminant and nothing else, which is what keeps the
//!   "telemetry off" overhead inside the pipeline bench's 2% budget.
//! * Instruments are plain atomics behind `Arc`s: [`Counter`] (monotone
//!   add), [`Gauge`] (set / set-max), and [`Histogram`] (fixed upper
//!   bounds chosen at registration, atomic bucket counts plus sum and
//!   count). [`Histogram::time`] returns a [`SpanTimer`] guard that
//!   observes elapsed wall-clock microseconds on drop.
//! * **Observation-only contract.** Instruments never feed back into the
//!   code that updates them: no instrument has a read path the pipeline
//!   consults, so a run with telemetry enabled produces output bitwise
//!   identical to one without (`tests/telemetry.rs` in the workspace
//!   root holds the engines to exactly this).
//! * Metric names follow `ah_<crate>_<subsystem>_<name>` (validated by
//!   [`valid_metric_name`]; CI lints every exported name against it).
//!   Wall-clock derived values (span timers) are exported for operators
//!   but never folded into run output, so determinism of results is
//!   unaffected by scheduler noise.
//!
//! # Example
//!
//! ```
//! use ah_obs::Recorder;
//!
//! let rec = Recorder::new();
//! let pkts = rec.counter("ah_demo_stage_packets_total");
//! pkts.add(3);
//! let lag = rec.histogram("ah_demo_stage_lag_us", ah_obs::LATENCY_US_BUCKETS);
//! lag.observe(250);
//! let snap = rec.snapshot();
//! assert_eq!(snap.samples.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod recorder;

pub use export::{
    to_jsonl_line, to_prometheus, Exporter, HistogramSnapshot, Sample, Snapshot, Value,
};
pub use recorder::{Counter, Gauge, Histogram, Recorder, SpanTimer};

/// Default bucket upper bounds for microsecond latency histograms:
/// 1 µs … 10 s in a 1-2-5 ladder. Values above the last bound land in
/// the implicit `+Inf` bucket.
pub const LATENCY_US_BUCKETS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    1_000_000, 10_000_000,
];

/// Default bucket upper bounds for size/occupancy histograms (1 … 1M in
/// a power-of-4-ish ladder).
pub const SIZE_BUCKETS: &[u64] =
    &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

/// True when `name` follows the workspace metric naming scheme
/// `ah_<crate>_<subsystem>_<name>`: at least four `_`-separated
/// segments, the first exactly `ah`, every segment non-empty lowercase
/// ASCII alphanumeric.
pub fn valid_metric_name(name: &str) -> bool {
    let segments: Vec<&str> = name.split('_').collect();
    segments.len() >= 4
        && segments[0] == "ah"
        && segments.iter().all(|s| {
            !s.is_empty() && s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_scheme() {
        assert!(valid_metric_name("ah_flow_cache_occupancy"));
        assert!(valid_metric_name("ah_telescope_agg_watermark_lag_us"));
        assert!(valid_metric_name("ah_simnet_ring_occupancy_hwm"));
        assert!(!valid_metric_name("flow_cache_occupancy")); // no ah_ prefix
        assert!(!valid_metric_name("ah_flow_occupancy")); // too few segments
        assert!(!valid_metric_name("ah_Flow_cache_occupancy")); // uppercase
        assert!(!valid_metric_name("ah_flow__occupancy")); // empty segment
        assert!(!valid_metric_name("ah_flow_cache_occupancy ")); // whitespace
    }
}
