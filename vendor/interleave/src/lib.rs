//! `interleave` — a first-party, zero-dependency, loom-style
//! exhaustive concurrency model checker.
//!
//! A model is an ordinary closure that spawns [`shadow::thread`]s and
//! communicates through [`shadow`] atomics and [`shadow::Cell`]s. The
//! [`Checker`] runs the closure over and over, each time under a
//! different schedule, until every interleaving reachable within the
//! configured bounds has been explored or a failure is found:
//!
//! * **assertion failures** (any panic in model code),
//! * **data races** — conflicting plain-memory accesses with no
//!   happens-before edge between them (vector-clock detection),
//! * **stale reads gone wrong** — each atomic load may observe *any*
//!   store the C11 acquire/release coherence rules permit, not just
//!   the latest, so bugs that need a weakly-ordered machine are found
//!   on any host,
//! * **deadlocks and lost wakeups** — no runnable thread, spinners
//!   included, with nothing left that could wake them.
//!
//! On failure the checker reports a **replayable counterexample**: the
//! exact decision schedule plus a per-operation log of the failing
//! interleaving (see [`Failure`]).
//!
//! # Exploration strategy
//!
//! Scheduling points are shadow operations. The explorer is a
//! depth-first search over two kinds of decisions — *which thread runs
//! next* and *which store a load observes* — pruned by:
//!
//! * **bounded preemption** ([`Checker::preemption_bound`]): involuntary
//!   context switches per execution are capped (voluntary switches at
//!   parks/finishes are always free). Real memory-ordering bugs almost
//!   always need only 1–2 preemptions, which keeps the search
//!   tractable while staying exhaustive within the bound;
//! * **bounded store buffers** ([`Checker::stale_depth`]): each
//!   (thread, location) pair may take at most this many non-latest
//!   read branches per execution, the analogue of a finite store
//!   buffer draining;
//! * **persistent-set-lite stuttering elimination**: a spinning thread
//!   ([`shadow::yield_now`]/[`shadow::hint::spin_loop`]) parks until
//!   another thread performs a store, so fruitless spin iterations are
//!   never enumerated; a rescue pass wakes all spinners when nothing
//!   else is runnable, and two rescue passes with no intervening
//!   progress are reported as a deadlock.
//!
//! Within these bounds the search is exhaustive: a clean
//! [`Outcome`] with `complete == true` means *no* reachable
//! interleaving violates the model's assertions.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::Ordering;
//! use interleave::{shadow, Checker};
//!
//! // Release/acquire message passing: the flag publishes the cell.
//! let outcome = Checker::new().check(|| {
//!     let cell = Arc::new(shadow::Cell::new(0u64));
//!     let flag = Arc::new(shadow::AtomicUsize::new(0));
//!     let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
//!     let t = shadow::thread::spawn(move || {
//!         if f2.load(Ordering::Acquire) == 1 {
//!             // SAFETY-free: the checker validates the ordering.
//!             c2.with(|p| unsafe { assert_eq!(*p, 7) });
//!         }
//!     });
//!     cell.with_mut(|p| unsafe { *p = 7 });
//!     flag.store(1, Ordering::Release);
//!     t.join();
//! });
//! outcome.assert_clean();
//! assert!(outcome.complete);
//! ```
//
// ah-lint: allow-file(panic-path, reason = "test-support crate: assert_clean and shadow misuse report by panicking, like any test harness")
// ah-lint: allow-file(unsafe-forbid, reason = "shadow::Cell wraps UnsafeCell to model plain memory; the two unsafe blocks carry SAFETY comments and the scheduler guarantees exclusive access by construction")

#![warn(missing_docs)]

mod clock;
mod exec;
pub mod shadow;

use std::sync::{Arc, Once};

pub(crate) use exec::{run_once, AbortExec, Node, World};

/// Exploration bounds and policies; see the crate docs for how each
/// bound shapes the search.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum involuntary context switches per execution.
    pub preemption_bound: u32,
    /// Maximum non-latest read branches per (thread, location) per
    /// execution — the modeled store-buffer depth.
    pub stale_depth: u32,
    /// Hard per-execution scheduling-point cap; exceeding it is
    /// reported as a failure rather than silently pruned.
    pub max_steps: u64,
    /// Hard cap on explored schedules; exceeding it clears
    /// [`Outcome::complete`].
    pub max_schedules: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config { preemption_bound: 2, stale_depth: 2, max_steps: 20_000, max_schedules: 3_000_000 }
    }
}

/// What kind of bug a counterexample demonstrates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure).
    Panic,
    /// Conflicting plain-memory accesses with no happens-before edge.
    DataRace,
    /// No runnable thread and no possible wakeup (includes lost-close
    /// style lost wakeups of parked spinners).
    Deadlock,
    /// The execution exceeded [`Config::max_steps`].
    StepLimit,
    /// The model closure behaved differently on replay; models must be
    /// deterministic apart from checker-controlled decisions.
    NonDeterminism,
}

/// A failed check: what went wrong plus a replayable counterexample.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Bug category.
    pub kind: FailureKind,
    /// Human description (panic message, racing accesses, …).
    pub message: String,
    /// The decision schedule of the failing execution — replaying
    /// these choices deterministically reproduces the bug.
    pub schedule: Vec<String>,
    /// Per-operation log of the failing execution (filled by the
    /// automatic replay pass).
    pub oplog: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:?}: {}", self.kind, self.message)?;
        writeln!(f, "counterexample schedule ({} decisions):", self.schedule.len())?;
        for line in &self.schedule {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "operation log of the failing interleaving:")?;
        for line in &self.oplog {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Result of a [`Checker::check`] run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Number of executions explored.
    pub schedules: u64,
    /// True when the bounded search space was exhausted (false when
    /// [`Config::max_schedules`] stopped it early).
    pub complete: bool,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

impl Outcome {
    /// Panic (with the full counterexample) if a failure was found.
    pub fn assert_clean(&self) {
        if let Some(fail) = &self.failure {
            panic!("model check failed after {} schedules:\n{fail}", self.schedules);
        }
    }

    /// [`Self::assert_clean`] plus a guarantee the search finished.
    pub fn assert_exhaustive_clean(&self) {
        self.assert_clean();
        assert!(
            self.complete,
            "model check clean but search truncated at {} schedules (raise max_schedules)",
            self.schedules
        );
    }
}

/// The model checker: configure bounds, then [`check`](Self::check) a
/// model closure.
#[derive(Clone, Debug, Default)]
pub struct Checker {
    cfg: Config,
}

impl Checker {
    /// Checker with default bounds ([`Config::default`]).
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Set the involuntary-context-switch bound.
    pub fn preemption_bound(mut self, n: u32) -> Checker {
        self.cfg.preemption_bound = n;
        self
    }

    /// Set the modeled store-buffer depth.
    pub fn stale_depth(mut self, n: u32) -> Checker {
        self.cfg.stale_depth = n;
        self
    }

    /// Set the per-execution scheduling-point cap.
    pub fn max_steps(mut self, n: u64) -> Checker {
        self.cfg.max_steps = n;
        self
    }

    /// Set the total explored-schedule cap.
    pub fn max_schedules(mut self, n: u64) -> Checker {
        self.cfg.max_schedules = n;
        self
    }

    /// Explore the model exhaustively within the configured bounds.
    ///
    /// The closure runs once per schedule and must be deterministic:
    /// all nondeterminism must come from checker-controlled decisions
    /// (thread interleaving, load visibility). On failure, exploration
    /// stops and the failing schedule is replayed once more to produce
    /// the full operation log.
    pub fn check<F>(&self, model: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let world = Arc::new(World::new(self.cfg.clone()));
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let mut prefix: Vec<Node> = Vec::new();
        let mut schedules: u64 = 0;
        let mut complete = true;
        let mut failure = None;
        loop {
            let (trace, fail, _steps) = run_once(&world, &model, prefix, false);
            schedules += 1;
            if let Some(first) = fail {
                // Replay the failing schedule with logging switched on;
                // prefer the replayed failure (it carries the op log).
                let (_, replayed, _) = run_once(&world, &model, trace, true);
                failure = Some(replayed.unwrap_or(first));
                break;
            }
            // Depth-first backtrack: take the deepest decision with an
            // unexplored alternative as the new schedule prefix.
            let mut next = trace;
            let mut advanced = false;
            while let Some(mut node) = next.pop() {
                if let Some(alt) = node.pending.pop() {
                    node.chosen = alt;
                    next.push(node);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
            if schedules >= self.cfg.max_schedules {
                complete = false;
                break;
            }
            prefix = next;
        }
        world.shutdown_pool();
        Outcome { schedules, complete, failure }
    }
}

/// Chain a panic hook that silences the internal abort-unwind payload
/// used to tear down the other threads of a failing execution; every
/// other panic goes to the previous hook untouched.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortExec>().is_none() {
                prev(info);
            }
        }));
    });
}
