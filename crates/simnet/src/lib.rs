//! Synthetic internet substrate — the paper's data substitution.
//!
//! The paper's raw inputs (ORION telescope captures, Merit NetFlow,
//! mirrored packet taps, GreyNoise ground truth) are proprietary. This
//! crate generates a synthetic internet whose *wire-visible invariants*
//! match what the paper's pipeline keys on, so the telescope, flow and
//! detection code runs unmodified:
//!
//! * [`rng`] — a small, fully deterministic PRNG (splitmix64/xoshiro256**)
//!   plus the distributions the actors need;
//! * [`permute`] — a Feistel-network bijection used to reproduce
//!   ZMap-style random-permutation target ordering;
//! * [`space`] — the *observable space* scaling trick: scanners
//!   conceptually sweep all of IPv4, but only packets landing in the
//!   simulated observable prefixes (dark space, the two ISPs, honeypot
//!   sensors) are ever materialized, with rates thinned accordingly;
//! * [`actors`] — behavioral scanner models (ZMap, Masscan, Mirai bots,
//!   bruteforcing scanners, acknowledged research sweeps, vertical port
//!   sweeps, DoS backscatter, background radiation, benign user traffic);
//! * [`mux`] — the time-ordered event-queue multiplexer;
//! * [`ring`] — a bounded lock-free SPSC ring buffer used by the
//!   sharded parallel pipeline to fan packets out to worker threads;
//! * [`mpsc`] — its multi-producer sibling (same [`ring::RingSync`]
//!   facade, per-slot sequence numbers, batched reservations) used by
//!   the parallel engine's merge stage to fan shard results back in;
//! * [`faults`] — seeded fault injection (drops, duplicates, bounded
//!   reordering, truncation, corruption, burst outages) applied between
//!   the mux and the measurement consumers;
//! * [`world`] — the address plan and org/AS registry, and the builders
//!   for the intel substrate (ASN DB, rDNS, acknowledged list);
//! * [`scenario`] — paper-shaped presets: Darknet-1 (2021), Darknet-2
//!   (2022), the flow weeks, the 72-hour packet taps, the GreyNoise
//!   month.

// ah-lint: allow-file(unsafe-forbid, reason = "the SPSC and MPSC rings use UnsafeCell slots; every unsafe block carries a SAFETY comment and both rings are exhaustively model-checked (see tests/model_check.rs)")

#![warn(missing_docs)]

pub mod actors;
pub mod faults;
pub mod mpsc;
pub mod mux;
pub mod permute;
pub mod ring;
pub mod rng;
pub mod scenario;
pub mod space;
pub mod world;

pub use faults::{FaultInjector, FaultPlan, InjectorStats};
pub use mux::TrafficMux;
pub use rng::Rng64;
pub use space::ObservableSpace;
pub use world::World;
