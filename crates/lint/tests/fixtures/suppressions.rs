//! Fixture: suppression hygiene. A suppression that cannot be audited
//! (no reason, unknown lint, unknown directive) is itself a finding and
//! does NOT silence anything.

pub fn reasonless(v: Option<u32>) -> u32 {
    // ah-lint: allow(panic-path)
    //~^ bad-suppression
    v.unwrap() //~ panic-path
}

pub fn empty_reason(v: Option<u32>) -> u32 {
    // ah-lint: allow(panic-path, reason = "")
    //~^ bad-suppression
    v.unwrap() //~ panic-path
}

pub fn unknown_lint(v: Option<u32>) -> u32 {
    // ah-lint: allow(no-such-lint, reason = "typo'd lint id")
    //~^ bad-suppression
    v.unwrap() //~ panic-path
}

pub fn unknown_directive(v: Option<u32>) -> u32 {
    // ah-lint: deny(panic-path)
    //~^ bad-suppression
    v.unwrap() //~ panic-path
}

pub fn good_line_scope(v: Option<u32>) -> u32 {
    // ah-lint: allow(panic-path, reason = "fixture: line-scope check")
    v.unwrap()
}

pub fn scope_is_two_lines_only(v: Option<u32>) -> u32 {
    // ah-lint: allow(panic-path, reason = "fixture: does not reach line +2")
    //~^ unused-suppression
    let w = v;
    w.unwrap() //~ panic-path
}
