//! First-party Chrome trace-event schema validator.
//!
//! CI must be able to assert that an emitted trace is loadable without
//! reaching for external tooling, so this module carries a minimal
//! recursive-descent JSON reader (the same spirit as the hand-rolled
//! reader in `tests/telemetry.rs`) and a validator that enforces the
//! subset of the trace-event format our exporter produces:
//!
//! * the root is an object with a `traceEvents` array;
//! * every event has a `ph` phase string, and `B`/`E`/`i` events carry
//!   `name`/`pid`/`tid`/`ts`;
//! * per track (`pid`,`tid`), timestamps of `cat:"span"` events are
//!   non-decreasing in array order and `B`/`E` events balance with
//!   stack discipline (each `E` names the innermost open span);
//! * span names satisfy [`crate::valid_trace_name`];
//! * flow events (`s`/`t`/`f`) carry an `id`, and every flow chain has
//!   a start and ≥ 2 points.
//!
//! The `ah-trace` binary (`src/main.rs`) wraps this for `scripts/ci.sh`.

use std::collections::{BTreeMap, BTreeSet};

/// Minimal JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; trace timestamps fit losslessly).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Validating only
                    // the scalar's own bytes keeps the reader linear.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("non-utf8 string")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated utf-8 scalar"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("non-utf8 string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut r = Reader { bytes: text.as_bytes(), pos: 0 };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing garbage"));
    }
    Ok(v)
}

/// Summary statistics of a validated trace.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Total trace events (including metadata and flows).
    pub events: usize,
    /// Distinct (pid, tid) tracks that carried span events.
    pub tracks: usize,
    /// Span count (`B` events).
    pub spans: usize,
    /// Instant count (`i` events, `cat:"span"` only).
    pub instants: usize,
    /// Distinct flow (journey) ids.
    pub flow_ids: BTreeSet<u64>,
    /// Distinct span/instant names seen.
    pub names: BTreeSet<String>,
}

fn event_context(idx: usize, ev: &Json) -> String {
    let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
    format!("event #{idx} ({name})")
}

/// Validate Chrome trace-event JSON produced by [`crate::export`] (see
/// module docs for the exact contract). Returns summary stats on
/// success and a human-readable reason on the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let root = parse_json(text)?;
    let Some(Json::Arr(events)) = root.get("traceEvents") else {
        return Err("root object lacks a traceEvents array".to_string());
    };
    let mut stats = TraceStats { events: events.len(), ..TraceStats::default() };
    // Per (pid, tid): open-span name stack + last span-event timestamp.
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    // Flow id → (starts, total points).
    let mut flows: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for (idx, ev) in events.iter().enumerate() {
        let ctx = event_context(idx, ev);
        let Some(ph) = ev.get("ph").and_then(Json::as_str) else {
            return Err(format!("{ctx}: missing ph"));
        };
        match ph {
            "B" | "E" | "i" => {
                let Some(name) = ev.get("name").and_then(Json::as_str) else {
                    return Err(format!("{ctx}: missing name"));
                };
                let (Some(pid), Some(tid), Some(ts)) = (
                    ev.get("pid").and_then(Json::as_num),
                    ev.get("tid").and_then(Json::as_num),
                    ev.get("ts").and_then(Json::as_num),
                ) else {
                    return Err(format!("{ctx}: missing pid/tid/ts"));
                };
                let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("span");
                if cat != "span" {
                    continue;
                }
                let track = (pid as u64, tid as u64);
                if let Some(&prev) = last_ts.get(&track) {
                    if ts < prev {
                        return Err(format!(
                            "{ctx}: ts {ts} < {prev} — non-monotonic on track {track:?}"
                        ));
                    }
                }
                last_ts.insert(track, ts);
                let base = name.split('/').next().unwrap_or(name);
                if !crate::valid_trace_name(base) {
                    return Err(format!("{ctx}: span name violates the naming scheme"));
                }
                stats.names.insert(name.to_string());
                let stack = stacks.entry(track).or_default();
                match ph {
                    "B" => {
                        stats.spans += 1;
                        stack.push(name.to_string());
                    }
                    "E" => match stack.pop() {
                        Some(top) if top == name => {}
                        Some(top) => {
                            return Err(format!(
                                "{ctx}: E does not match innermost open span ({top})"
                            ));
                        }
                        None => return Err(format!("{ctx}: E with no open span")),
                    },
                    _ => stats.instants += 1,
                }
            }
            "s" | "t" | "f" => {
                let Some(id) = ev.get("id").and_then(Json::as_num) else {
                    return Err(format!("{ctx}: flow event missing id"));
                };
                let entry = flows.entry(id as u64).or_insert((0, 0));
                if ph == "s" {
                    entry.0 += 1;
                }
                entry.1 += 1;
            }
            "M" => {}
            other => return Err(format!("{ctx}: unsupported phase {other:?}")),
        }
    }
    for (track, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("track {track:?}: span {open:?} never ends (unbalanced B/E)"));
        }
    }
    for (id, (starts, points)) in &flows {
        if *starts != 1 {
            return Err(format!("flow {id}: {starts} start events (want exactly 1)"));
        }
        if *points < 2 {
            return Err(format!("flow {id}: only {points} point(s) (want ≥ 2)"));
        }
    }
    stats.tracks = stacks.len();
    stats.flow_ids = flows.keys().copied().collect();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v =
            parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":true,"d":null}"#).expect("parse");
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\n\"y\""));
        let Some(Json::Arr(items)) = v.get("a") else { panic!("array") };
        assert_eq!(items[2].as_num(), Some(-300.0));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    fn wrap(events: &str) -> String {
        format!("{{\"traceEvents\":[{events}]}}")
    }

    #[test]
    fn accepts_balanced_trace() {
        let json = wrap(
            r#"{"name":"ah_t_a_b","ph":"B","ts":1,"pid":1,"tid":0},
               {"name":"ah_t_a_b","ph":"E","ts":2,"pid":1,"tid":0}"#,
        );
        let stats = validate_chrome_trace(&json).expect("valid");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.tracks, 1);
    }

    #[test]
    fn rejects_unbalanced_and_non_monotonic() {
        let open = wrap(r#"{"name":"ah_t_a_b","ph":"B","ts":1,"pid":1,"tid":0}"#);
        assert!(validate_chrome_trace(&open).unwrap_err().contains("never ends"));
        let nonmono = wrap(
            r#"{"name":"ah_t_a_b","ph":"B","ts":5,"pid":1,"tid":0},
               {"name":"ah_t_a_b","ph":"E","ts":4,"pid":1,"tid":0}"#,
        );
        assert!(validate_chrome_trace(&nonmono).unwrap_err().contains("non-monotonic"));
        let crossed = wrap(
            r#"{"name":"ah_t_a_b","ph":"B","ts":1,"pid":1,"tid":0},
               {"name":"ah_t_a_c","ph":"B","ts":2,"pid":1,"tid":0},
               {"name":"ah_t_a_b","ph":"E","ts":3,"pid":1,"tid":0}"#,
        );
        assert!(validate_chrome_trace(&crossed).unwrap_err().contains("innermost"));
    }

    #[test]
    fn rejects_bad_span_names_and_flows() {
        let bad_name = wrap(r#"{"name":"route","ph":"i","ts":1,"pid":1,"tid":0}"#);
        assert!(validate_chrome_trace(&bad_name).unwrap_err().contains("naming scheme"));
        let lone_flow = wrap(r#"{"name":"j","ph":"s","id":9,"ts":1,"pid":1,"tid":0}"#);
        assert!(validate_chrome_trace(&lone_flow).unwrap_err().contains("point"));
    }
}
