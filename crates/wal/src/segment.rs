//! On-disk segment layout and the fsync'd segment index.
//!
//! A WAL directory holds:
//!
//! * `<base_seq:016x>.seg` — data segments. Each starts with a 24-byte
//!   header (`magic ‖ version ‖ base_seq ‖ crc`) followed by frames whose
//!   sequence numbers run `base_seq, base_seq+1, …` contiguously.
//! * `wal.idx` — the segment index: one CRC'd entry per segment with its
//!   base sequence, frame count, byte size and sealed flag. The index is
//!   written atomically (tmp + rename + directory fsync) at rotation and
//!   seal time. It is **advisory**: the segments are the truth, and
//!   recovery rebuilds the index whenever it disagrees with a scan — so a
//!   missing or mangled index entry is always survivable.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::{crc32, Crc32};

/// Magic bytes opening every data segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"AHWALSG1";
/// Fixed size of the segment header.
pub const SEGMENT_HEADER_BYTES: usize = 24;
/// Magic bytes opening the segment index.
pub const INDEX_MAGIC: [u8; 8] = *b"AHWALIX1";
/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// File name of the segment index inside a WAL directory.
pub const INDEX_FILE: &str = "wal.idx";

/// Encode a segment header for a segment whose first frame is `base_seq`.
pub fn encode_segment_header(base_seq: u64) -> [u8; SEGMENT_HEADER_BYTES] {
    let mut out = [0u8; SEGMENT_HEADER_BYTES];
    out[0..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&base_seq.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&out[0..20]);
    out[20..24].copy_from_slice(&crc.finish().to_le_bytes());
    out
}

/// Decode and validate a segment header, returning its base sequence.
pub fn decode_segment_header(buf: &[u8]) -> Option<u64> {
    if buf.len() < SEGMENT_HEADER_BYTES || buf[0..8] != SEGMENT_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let base_seq = u64::from_le_bytes(buf[12..20].try_into().ok()?);
    let stored = u32::from_le_bytes(buf[20..24].try_into().ok()?);
    if crc32(&buf[0..20]) != stored {
        return None;
    }
    Some(base_seq)
}

/// File name of the segment whose first frame is `base_seq`.
pub fn segment_file_name(base_seq: u64) -> String {
    format!("{base_seq:016x}.seg")
}

/// Parse a `<base_seq:016x>.seg` file name back to its base sequence.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".seg")?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// All data segments in `dir`, sorted by base sequence.
pub fn segment_paths(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name();
                if let Some(base) = name.to_str().and_then(parse_segment_file_name) {
                    out.push((base, entry.path()));
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    out.sort_by_key(|(base, _)| *base);
    Ok(out)
}

/// Path of the segment index inside `dir`.
pub fn index_path(dir: &Path) -> PathBuf {
    dir.join(INDEX_FILE)
}

/// One index entry describing a data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Sequence number of the segment's first frame.
    pub base_seq: u64,
    /// Frames the segment holds.
    pub frames: u64,
    /// Segment file size in bytes (header included).
    pub bytes: u64,
    /// True when the run's seal frame is the segment's last record.
    pub sealed: bool,
}

const INDEX_ENTRY_BYTES: usize = 8 + 8 + 8 + 1 + 4;

/// Read and validate the segment index. `Ok(None)` means the index is
/// missing or fails validation — the caller should fall back to a scan.
pub fn read_index(dir: &Path) -> io::Result<Option<Vec<IndexEntry>>> {
    let mut raw = Vec::new();
    match fs::File::open(index_path(dir)) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    if raw.len() < 12 || raw[0..8] != INDEX_MAGIC {
        return Ok(None);
    }
    let version = match raw[8..12].try_into() {
        Ok(b) => u32::from_le_bytes(b),
        Err(_) => return Ok(None),
    };
    if version != FORMAT_VERSION {
        return Ok(None);
    }
    let mut entries = Vec::new();
    let mut off = 12usize;
    while off < raw.len() {
        if raw.len() - off < INDEX_ENTRY_BYTES {
            return Ok(None);
        }
        let body = &raw[off..off + INDEX_ENTRY_BYTES];
        let stored = match body[25..29].try_into() {
            Ok(b) => u32::from_le_bytes(b),
            Err(_) => return Ok(None),
        };
        if crc32(&body[0..25]) != stored {
            return Ok(None);
        }
        let field = |a: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&body[a..a + 8]);
            u64::from_le_bytes(b)
        };
        entries.push(IndexEntry {
            base_seq: field(0),
            frames: field(8),
            bytes: field(16),
            sealed: body[24] != 0,
        });
        off += INDEX_ENTRY_BYTES;
    }
    Ok(Some(entries))
}

/// Atomically replace the segment index: write a temp file, fsync it,
/// rename it into place, then fsync the directory so the rename is
/// durable.
pub fn write_index(dir: &Path, entries: &[IndexEntry]) -> io::Result<()> {
    let mut raw = Vec::with_capacity(12 + entries.len() * INDEX_ENTRY_BYTES);
    raw.extend_from_slice(&INDEX_MAGIC);
    raw.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for e in entries {
        let start = raw.len();
        raw.extend_from_slice(&e.base_seq.to_le_bytes());
        raw.extend_from_slice(&e.frames.to_le_bytes());
        raw.extend_from_slice(&e.bytes.to_le_bytes());
        raw.push(u8::from(e.sealed));
        let crc = crc32(&raw[start..]);
        raw.extend_from_slice(&crc.to_le_bytes());
    }
    let tmp = dir.join("wal.idx.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&raw)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, index_path(dir))?;
    // Make the rename itself durable. Directory fsync is best-effort on
    // platforms where directories cannot be opened.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = encode_segment_header(42);
        assert_eq!(decode_segment_header(&h), Some(42));
        for bit in 0..SEGMENT_HEADER_BYTES * 8 {
            let mut m = h;
            m[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(decode_segment_header(&m), None, "bit {bit} accepted");
        }
    }

    #[test]
    fn file_name_round_trip() {
        for base in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(parse_segment_file_name(&segment_file_name(base)), Some(base));
        }
        assert_eq!(parse_segment_file_name("wal.idx"), None);
        assert_eq!(parse_segment_file_name("zz.seg"), None);
    }

    #[test]
    fn index_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("ah-wal-idx-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let entries = vec![
            IndexEntry { base_seq: 0, frames: 10, bytes: 400, sealed: false },
            IndexEntry { base_seq: 10, frames: 3, bytes: 140, sealed: true },
        ];
        write_index(&dir, &entries).unwrap();
        assert_eq!(read_index(&dir).unwrap(), Some(entries));
        // Any flipped byte invalidates the index as a whole.
        let path = index_path(&dir);
        let mut raw = fs::read(&path).unwrap();
        raw[20] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert_eq!(read_index(&dir).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
