//! End-to-end harness test: drive real mutants through a real `cargo`
//! on a tiny standalone project, and observe all four classifications
//! (caught / survived / build-broken / timeout) plus the
//! restore-after-run invariant. The project is self-contained (own
//! `[workspace]` table, zero deps), so the heavy workspace never
//! rebuilds here.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use ah_mutate::enumerate_source;
use ah_mutate::runner::{Outcome, Scratch};

const MINI_LIB: &str = r#"//! mini
pub fn admits(x: u32) -> bool {
    x >= 10
}
pub fn untested(x: u32) -> bool {
    x > 100
}
pub fn joins(a: &str) -> String {
    a.to_string() + "!"
}

#[cfg(test)]
mod tests {
    #[test]
    fn admits_boundary() {
        assert!(super::admits(10));
        assert!(super::admits(11));
        assert!(!super::admits(9));
    }
    #[test]
    fn joins_appends() {
        assert_eq!(super::joins("a"), "a!");
    }
}
"#;

fn mini_project(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("ah-mutate-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let root = base.join("mini");
    fs::create_dir_all(root.join("src")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[package]\nname = \"mini\"\nversion = \"0.0.0\"\nedition = \"2021\"\n\n[workspace]\n",
    )
    .unwrap();
    fs::write(root.join("src/lib.rs"), MINI_LIB).unwrap();
    (base, root)
}

fn steps() -> Vec<Vec<String>> {
    vec![vec!["build".into(), "-q".into()], vec!["test".into(), "-q".into()]]
}

#[test]
fn classifies_caught_survived_broken_and_timeout() {
    let (base, root) = mini_project("classify");
    let mutants = enumerate_source("src/lib.rs", MINI_LIB);
    let tested_cmp = mutants
        .iter()
        .find(|m| m.op == "cmp-swap" && m.context.contains(">= 10"))
        .expect("enumerates the tested boundary");
    let untested_cmp = mutants
        .iter()
        .find(|m| m.op == "cmp-swap" && m.context.contains("> 100"))
        .expect("enumerates the untested comparison");
    let string_plus = mutants
        .iter()
        .find(|m| m.op == "arith-swap" && m.context.contains("\"!\""))
        .expect("enumerates the String + &str misfire");

    let scratch = Scratch::prepare(&root, &base.join("scratch")).unwrap();
    let long = Duration::from_secs(300);
    let pristine = fs::read_to_string(scratch.dir.join("src/lib.rs")).unwrap();

    let caught = scratch.run_mutant(tested_cmp, &steps(), long).unwrap();
    assert_eq!(caught.outcome, Outcome::Caught, "boundary test must fail: {}", caught.detail);

    let survived = scratch.run_mutant(untested_cmp, &steps(), long).unwrap();
    assert_eq!(survived.outcome, Outcome::Survived, "nothing covers it: {}", survived.detail);

    let broken = scratch.run_mutant(string_plus, &steps(), long).unwrap();
    assert_eq!(
        broken.outcome,
        Outcome::BuildBroken,
        "String - &str cannot compile: {}",
        broken.detail
    );

    let timed = scratch.run_mutant(tested_cmp, &steps(), Duration::ZERO).unwrap();
    assert_eq!(timed.outcome, Outcome::Timeout, "zero budget: {}", timed.detail);

    // The scratch copy must be byte-identical after every verdict.
    let after = fs::read_to_string(scratch.dir.join("src/lib.rs")).unwrap();
    assert_eq!(pristine, after, "runner must restore the mutated file");

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn stale_scratch_is_rejected_not_corrupted() {
    let (base, root) = mini_project("stale");
    let mutants = enumerate_source("src/lib.rs", MINI_LIB);
    let m = &mutants[0];
    let scratch = Scratch::prepare(&root, &base.join("scratch")).unwrap();
    // Divergent scratch content at the mutant's offset must error out
    // rather than splice garbage.
    fs::write(scratch.dir.join("src/lib.rs"), "//! drifted\n").unwrap();
    let err = scratch.run_mutant(m, &steps(), Duration::from_secs(1)).unwrap_err();
    assert!(err.to_string().contains("out of sync"), "{err}");
    let _ = fs::remove_dir_all(&base);
}
