//! Cross-crate consistency of the flow-measurement plane: sampled-flow
//! estimates versus ground-truth counters, NetFlow v5 export round-trips
//! of real datasets, and conservation across the router model.

use aggressive_scanners::flow::record::{decode_v5, encode_v5, V5_MAX_RECORDS};
use aggressive_scanners::pipeline::{self, RunOptions};
use aggressive_scanners::simnet::scenario::ScenarioConfig;

#[test]
fn sampled_estimates_track_ground_truth() {
    let run = pipeline::run(
        ScenarioConfig::tiny(2, 21),
        RunOptions { sampling_rate: 10, ..RunOptions::with_flows() },
    );
    let ds = run.merit_flows.as_ref().unwrap();
    let truth: u64 = ds.router_days.values().map(|c| c.packets).sum();
    let sampled: u64 = ds.records.iter().map(|r| r.packets).sum();
    let estimate = ds.estimate(sampled);
    assert!(truth > 1000, "needs traffic: {truth}");
    let err = (estimate as f64 - truth as f64).abs() / truth as f64;
    // Systematic 1:10 sampling over tens of thousands of packets: the
    // inverse estimator must land within a few percent.
    assert!(err < 0.05, "estimate {estimate} vs truth {truth} (err {err:.3})");
}

#[test]
fn unsampled_dataset_is_exact() {
    let run = pipeline::run(
        ScenarioConfig::tiny(1, 22),
        RunOptions { sampling_rate: 1, ..RunOptions::with_flows() },
    );
    let ds = run.merit_flows.as_ref().unwrap();
    let truth: u64 = ds.router_days.values().map(|c| c.packets).sum();
    let sampled: u64 = ds.records.iter().map(|r| r.packets).sum();
    assert_eq!(truth, sampled, "1:1 sampling conserves every packet");
}

#[test]
fn netflow_v5_roundtrips_real_datasets() {
    let run = pipeline::run(
        ScenarioConfig::tiny(1, 23),
        RunOptions { sampling_rate: 5, ..RunOptions::with_flows() },
    );
    let ds = run.merit_flows.as_ref().unwrap();
    assert!(!ds.records.is_empty());
    // Records from one router (the v5 header carries a single engine id).
    let r1: Vec<_> = ds.records.iter().filter(|r| r.router == 1).cloned().collect();
    let mut decoded = Vec::new();
    for (i, chunk) in r1.chunks(V5_MAX_RECORDS).enumerate() {
        let wire = encode_v5(chunk, aggressive_scanners::net::time::Ts::from_secs(60), i as u32, 5);
        decoded.extend(decode_v5(&wire).unwrap());
    }
    // v5 timestamps are millisecond-resolution; compare at that granularity.
    assert_eq!(decoded.len(), r1.len());
    for (d, o) in decoded.iter().zip(&r1) {
        assert_eq!(d.key, o.key);
        assert_eq!(d.packets, o.packets);
        assert_eq!(d.direction, o.direction);
        assert_eq!(d.first.micros() / 1000, o.first.micros() / 1000);
        assert_eq!(d.last.micros() / 1000, o.last.micros() / 1000);
    }
}

#[test]
fn routers_split_the_border_exhaustively() {
    // Every border-crossing packet lands at exactly one router: the sum
    // of router-day truth counters must equal the count of border
    // dispositions.
    use aggressive_scanners::flow::router::Disposition;
    use aggressive_scanners::simnet::scenario::Scenario;
    let cfg = ScenarioConfig::tiny(1, 24);
    let mut sc = Scenario::build(cfg);
    let world = sc.world.clone();
    let mut isp = aggressive_scanners::flow::router::IspModel::new(
        aggressive_scanners::flow::router::IspConfig {
            internal: world.merit_internal(),
            policy: Box::new(world.merit_policy()),
            routers: vec![1, 2, 3],
            sampling_rate: 100,
        },
    );
    let mut border = 0u64;
    while let Some(pkt) = sc.mux.next_packet() {
        if let Disposition::Border(..) = isp.observe(&pkt) {
            border += 1;
        }
    }
    let ds = isp.finish();
    let counted: u64 = ds.router_days.values().map(|c| c.packets).sum();
    assert_eq!(border, counted);
    assert!(border > 1000);
}
