//! Plain-text table rendering and CSV output for the experiment runner.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple monospace table with auto-sized columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// An empty table with a title row and column headers.
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; shorter rows are padded with empty cells.
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with box-drawing rules.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |out: &mut String| {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            out.push_str(&s);
            out.push('\n');
        };
        let render_row = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let c = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - c.chars().count();
                let _ = write!(s, " {}{} |", c, " ".repeat(pad));
            }
            out.push_str(&s);
            out.push('\n');
        };
        line(&mut out);
        if !self.headers.is_empty() {
            render_row(&mut out, &self.headers);
            line(&mut out);
        }
        for row in &self.rows {
            render_row(&mut out, row);
        }
        line(&mut out);
        out
    }
}

/// Write rows as CSV (minimal quoting: fields containing commas, quotes
/// or newlines are quoted with doubled inner quotes).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(f, "{}", headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        writeln!(f, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","))?;
    }
    f.flush()
}

/// Format a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a percentage to two decimals.
pub fn fmt_pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Format a packet count in millions with two decimals ("12.34 M").
pub fn fmt_millions(n: u64) -> String {
    format!("{:.2} M", n as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Demo", &["name", "count"]);
        t.row(&["alpha", "1"]);
        t.row(&["beta-longer", "22,000"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha"));
        assert!(s.contains("| beta-longer"));
        // All data lines have equal width.
        let widths: Vec<usize> =
            s.lines().filter(|l| l.starts_with('|')).map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new("", &["a", "b", "c"]);
        t.row(&["x"]);
        let s = t.render();
        assert!(s.lines().filter(|l| l.starts_with('|')).count() == 2);
    }

    #[test]
    fn csv_quoting() {
        let dir = std::env::temp_dir().join("ah_report_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["plain".into(), "has,comma".into()], vec!["has\"q".into(), "x".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"has,comma\""));
        assert!(body.contains("\"has\"\"q\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_pct(7.777), "7.78%");
        assert_eq!(fmt_pct(0.1), "0.10%");
        assert_eq!(fmt_millions(12_340_000), "12.34 M");
    }
}
