//! Error type shared by all parsers and the pcap reader/writer.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;

/// Errors produced by packet parsing, building, and pcap I/O.
///
/// Parsers are total: every malformed input maps onto one of these
/// variants rather than panicking, which is what lets the pipeline apply
/// fault injection (truncation, corruption) and keep running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// Protocol layer that was being parsed.
        layer: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A length field points outside the buffer or below the header size.
    BadLength {
        /// Protocol layer that rejected the value.
        layer: &'static str,
        /// The offending length value.
        value: usize,
    },
    /// A version/type field has an unsupported value.
    Unsupported {
        /// Protocol layer that rejected the value.
        layer: &'static str,
        /// Name of the offending field.
        field: &'static str,
        /// The unsupported value.
        value: u64,
    },
    /// The checksum did not verify.
    BadChecksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
    },
    /// A pcap file had an unknown magic number.
    BadMagic(u32),
    /// CIDR prefix length out of range (IPv4: 0..=32).
    BadPrefixLen(u8),
    /// Text could not be parsed as an address or prefix.
    BadAddressSyntax(String),
    /// Underlying I/O error (pcap reader/writer); stores the error text
    /// because `std::io::Error` is not `Clone`/`PartialEq`.
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { layer, needed, got } => {
                write!(f, "{layer}: truncated, need {needed} bytes, got {got}")
            }
            NetError::BadLength { layer, value } => {
                write!(f, "{layer}: inconsistent length field {value}")
            }
            NetError::Unsupported { layer, field, value } => {
                write!(f, "{layer}: unsupported {field} = {value}")
            }
            NetError::BadChecksum { layer } => write!(f, "{layer}: checksum mismatch"),
            NetError::BadMagic(m) => write!(f, "pcap: unknown magic 0x{m:08x}"),
            NetError::BadPrefixLen(l) => write!(f, "prefix length {l} out of range for IPv4"),
            NetError::BadAddressSyntax(s) => write!(f, "cannot parse address/prefix: {s:?}"),
            NetError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::Truncated { layer: "ipv4", needed: 20, got: 7 };
        let s = e.to_string();
        assert!(s.contains("ipv4"));
        assert!(s.contains("20"));
        assert!(s.contains('7'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof!");
        let e: NetError = io.into();
        assert!(matches!(e, NetError::Io(ref s) if s.contains("eof!")));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NetError::BadMagic(1), NetError::BadMagic(1));
        assert_ne!(NetError::BadMagic(1), NetError::BadMagic(2));
    }
}
