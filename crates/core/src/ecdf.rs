//! Empirical cumulative distribution functions and top-α thresholds.
//!
//! Definitions 2 and 3 declare a scanner aggressive when a statistic
//! (packets per event, distinct ports per day) exceeds the empirical
//! (1 − α)-quantile of that statistic's distribution, with α = 10⁻⁴.

/// An ECDF over `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    /// Sorted samples.
    sorted: Vec<u64>,
}

impl Ecdf {
    /// Build from any sample collection.
    pub fn from_samples(mut samples: Vec<u64>) -> Ecdf {
        samples.sort_unstable();
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were added.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples ≤ x.
    pub fn cdf(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 ≤ q ≤ 1): smallest sample value v such that at
    /// least a `q` fraction of samples are ≤ v.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// The top-α threshold: the (1 − α)-quantile. A sample is "top-α" when
    /// it strictly exceeds this value.
    pub fn top_alpha_threshold(&self, alpha: f64) -> Option<u64> {
        self.quantile(1.0 - alpha)
    }

    /// Count of samples strictly above `x`.
    pub fn count_above(&self, x: u64) -> usize {
        self.sorted.len() - self.sorted.partition_point(|&s| s <= x)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().map(|&x| x as f64).sum::<f64>() / self.sorted.len() as f64
    }

    /// Evenly-spaced (x, F(x)) points for plotting, at most `points` long.
    pub fn curve(&self, points: usize) -> Vec<(u64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n.max(points) / points).max(1);
        let mut out = Vec::with_capacity(points + 1);
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(x, _)| x) != Some(self.sorted[n - 1]) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let e = Ecdf::from_samples(vec![1, 2, 2, 3, 10]);
        assert_eq!(e.len(), 5);
        assert!((e.cdf(0) - 0.0).abs() < 1e-12);
        assert!((e.cdf(1) - 0.2).abs() < 1e-12);
        assert!((e.cdf(2) - 0.6).abs() < 1e-12);
        assert!((e.cdf(10) - 1.0).abs() < 1e-12);
        assert!((e.cdf(11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::from_samples((1..=100).collect());
        assert_eq!(e.quantile(0.0), Some(1));
        assert_eq!(e.quantile(0.5), Some(50));
        assert_eq!(e.quantile(1.0), Some(100));
        assert_eq!(e.quantile(0.999), Some(100));
        assert_eq!(e.quantile(0.01), Some(1));
    }

    #[test]
    fn top_alpha_semantics() {
        // 10,000 samples 1..=10000; α = 1e-3 → threshold at the 99.9th
        // percentile; exactly 10 samples strictly above 9990.
        let e = Ecdf::from_samples((1..=10_000).collect());
        let t = e.top_alpha_threshold(1e-3).unwrap();
        assert_eq!(t, 9990);
        assert_eq!(e.count_above(t), 10);
    }

    #[test]
    fn quantile_monotone() {
        let e = Ecdf::from_samples(vec![5, 1, 9, 9, 2, 7, 3, 3, 3, 8]);
        let mut prev = 0;
        for i in 0..=100 {
            let q = e.quantile(i as f64 / 100.0).unwrap();
            assert!(q >= prev, "quantile not monotone at {i}");
            prev = q;
        }
    }

    #[test]
    fn empty_ecdf() {
        let e = Ecdf::from_samples(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.cdf(5), 0.0);
        assert_eq!(e.count_above(0), 0);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn stats() {
        let e = Ecdf::from_samples(vec![2, 4, 6]);
        assert_eq!(e.min(), Some(2));
        assert_eq!(e.max(), Some(6));
        assert!((e.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_nondecreasing_and_ends_at_one() {
        let e = Ecdf::from_samples((0..1000).map(|i| i * i % 777).collect());
        let c = e.curve(50);
        assert!(c.len() <= 52);
        assert!(c.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_heavy_distribution() {
        // 9,999 ones and a single 1000 — the threshold must be 1 and the
        // single outlier the only sample above it.
        let mut v = vec![1u64; 9999];
        v.push(1000);
        let e = Ecdf::from_samples(v);
        let t = e.top_alpha_threshold(1e-4).unwrap();
        assert_eq!(t, 1);
        assert_eq!(e.count_above(t), 1);
    }
}
