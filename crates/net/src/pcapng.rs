//! The pcapng capture format (reader and writer).
//!
//! Modern capture tools default to pcapng rather than classic pcap; a
//! telescope operator pointing this library at their archives needs both.
//! Implemented from the published block layout:
//!
//! * **SHB** (Section Header Block, type `0x0A0D0D0A`) with the
//!   byte-order magic `0x1A2B3C4D`;
//! * **IDB** (Interface Description Block, type `1`) carrying link type
//!   and snap length;
//! * **EPB** (Enhanced Packet Block, type `6`) carrying a 64-bit
//!   timestamp (microsecond resolution by default), captured and
//!   original lengths, and the padded packet data.
//!
//! Options are skipped on read and not emitted on write. Unknown block
//! types are skipped, as the format prescribes. Only little-endian
//! sections are written; both byte orders are read.

use crate::error::{NetError, Result};
use crate::time::Ts;
use std::io::{Read, Write};

/// Block type: Section Header Block.
pub const BT_SHB: u32 = 0x0A0D_0D0A;
/// Block type: Interface Description Block.
pub const BT_IDB: u32 = 0x0000_0001;
/// Block type: Enhanced Packet Block.
pub const BT_EPB: u32 = 0x0000_0006;
/// Byte-order magic inside the SHB.
pub const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;

/// One captured packet from a pcapng file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapNgPacket {
    /// Interface the packet was captured on (index of its IDB).
    pub interface: u32,
    /// Capture timestamp.
    pub ts: Ts,
    /// Original wire length (may exceed `data.len()`).
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Vec<u8>,
}

/// Streaming pcapng writer: one section, one interface.
pub struct PcapNgWriter<W: Write> {
    inner: W,
    packets: u64,
}

fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

impl<W: Write> PcapNgWriter<W> {
    /// Write the SHB and one IDB for `linktype` with `snaplen`.
    pub fn new(mut inner: W, linktype: u16, snaplen: u32) -> Result<Self> {
        // SHB: type, total len (28), magic, version 1.0, section len -1.
        let mut shb = Vec::with_capacity(28);
        shb.extend_from_slice(&BT_SHB.to_le_bytes());
        shb.extend_from_slice(&28u32.to_le_bytes());
        shb.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        shb.extend_from_slice(&28u32.to_le_bytes());
        inner.write_all(&shb)?;
        // IDB: type, total len (20), linktype, reserved, snaplen.
        let mut idb = Vec::with_capacity(20);
        idb.extend_from_slice(&BT_IDB.to_le_bytes());
        idb.extend_from_slice(&20u32.to_le_bytes());
        idb.extend_from_slice(&linktype.to_le_bytes());
        idb.extend_from_slice(&0u16.to_le_bytes());
        idb.extend_from_slice(&snaplen.to_le_bytes());
        idb.extend_from_slice(&20u32.to_le_bytes());
        inner.write_all(&idb)?;
        Ok(PcapNgWriter { inner, packets: 0 })
    }

    /// Append one Enhanced Packet Block on interface 0.
    pub fn write_packet(&mut self, ts: Ts, data: &[u8]) -> Result<()> {
        let padded = pad4(data.len());
        let total = 32 + padded;
        let usecs = ts.micros();
        let mut epb = Vec::with_capacity(total);
        epb.extend_from_slice(&BT_EPB.to_le_bytes());
        epb.extend_from_slice(&(total as u32).to_le_bytes());
        epb.extend_from_slice(&0u32.to_le_bytes()); // interface id
        epb.extend_from_slice(&((usecs >> 32) as u32).to_le_bytes());
        epb.extend_from_slice(&(usecs as u32).to_le_bytes());
        epb.extend_from_slice(&(data.len() as u32).to_le_bytes()); // captured
        epb.extend_from_slice(&(data.len() as u32).to_le_bytes()); // original
        epb.extend_from_slice(data);
        epb.resize(32 + padded - 4, 0); // pad packet data
        epb.extend_from_slice(&(total as u32).to_le_bytes());
        self.inner.write_all(&epb)?;
        self.packets += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming pcapng reader.
pub struct PcapNgReader<R: Read> {
    inner: R,
    little_endian: bool,
    /// Link types of the interfaces seen so far, in IDB order.
    interfaces: Vec<u16>,
}

impl<R: Read> PcapNgReader<R> {
    /// Read and validate the leading SHB.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut head = [0u8; 12];
        inner.read_exact(&mut head)?;
        let btype = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        if btype != BT_SHB {
            return Err(NetError::BadMagic(btype));
        }
        let magic = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
        let little_endian = match magic {
            BYTE_ORDER_MAGIC => true,
            m if m == BYTE_ORDER_MAGIC.swap_bytes() => false,
            other => return Err(NetError::BadMagic(other)),
        };
        let u32_at = |b: &[u8], le: bool| {
            let arr = [b[0], b[1], b[2], b[3]];
            if le {
                u32::from_le_bytes(arr)
            } else {
                u32::from_be_bytes(arr)
            }
        };
        let total = u32_at(&head[4..8], little_endian) as usize;
        if !(28..=1 << 20).contains(&total) {
            return Err(NetError::BadLength { layer: "pcapng-shb", value: total });
        }
        // Consume the rest of the SHB (version, section length, options,
        // trailing length).
        let mut rest = vec![0u8; total - 12];
        inner.read_exact(&mut rest)?;
        Ok(PcapNgReader { inner, little_endian, interfaces: Vec::new() })
    }

    fn u32_of(&self, b: &[u8]) -> u32 {
        let arr = [b[0], b[1], b[2], b[3]];
        if self.little_endian {
            u32::from_le_bytes(arr)
        } else {
            u32::from_be_bytes(arr)
        }
    }

    /// Link type of interface `i`, if its IDB has been read.
    pub fn interface_linktype(&self, i: u32) -> Option<u16> {
        self.interfaces.get(i as usize).copied()
    }

    /// Read blocks until the next packet; `Ok(None)` at a clean EOF.
    pub fn next_packet(&mut self) -> Result<Option<PcapNgPacket>> {
        loop {
            let mut head = [0u8; 8];
            match self.inner.read_exact(&mut head) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
                Err(e) => return Err(e.into()),
            }
            let btype = self.u32_of(&head[0..4]);
            let total = self.u32_of(&head[4..8]) as usize;
            if !(12..=1 << 26).contains(&total) || !total.is_multiple_of(4) {
                return Err(NetError::BadLength { layer: "pcapng", value: total });
            }
            let mut body = vec![0u8; total - 8];
            self.inner.read_exact(&mut body).map_err(|_| NetError::Truncated {
                layer: "pcapng",
                needed: total - 8,
                got: 0,
            })?;
            // Verify trailing length field.
            let trail = self.u32_of(&body[body.len() - 4..]);
            if trail as usize != total {
                return Err(NetError::BadLength { layer: "pcapng-trailer", value: trail as usize });
            }
            match btype {
                BT_IDB => {
                    if body.len() < 12 {
                        return Err(NetError::Truncated {
                            layer: "pcapng-idb",
                            needed: 12,
                            got: body.len(),
                        });
                    }
                    let lt = if self.little_endian {
                        u16::from_le_bytes([body[0], body[1]])
                    } else {
                        u16::from_be_bytes([body[0], body[1]])
                    };
                    self.interfaces.push(lt);
                }
                BT_EPB => {
                    if body.len() < 24 {
                        return Err(NetError::Truncated {
                            layer: "pcapng-epb",
                            needed: 24,
                            got: body.len(),
                        });
                    }
                    let interface = self.u32_of(&body[0..4]);
                    let ts_hi = u64::from(self.u32_of(&body[4..8]));
                    let ts_lo = u64::from(self.u32_of(&body[8..12]));
                    let captured = self.u32_of(&body[12..16]) as usize;
                    let orig_len = self.u32_of(&body[16..20]);
                    if 20 + captured + 4 > body.len() {
                        return Err(NetError::BadLength { layer: "pcapng-epb", value: captured });
                    }
                    return Ok(Some(PcapNgPacket {
                        interface,
                        ts: Ts::from_micros((ts_hi << 32) | ts_lo),
                        orig_len,
                        data: body[20..20 + captured].to_vec(),
                    }));
                }
                // SHB mid-stream (multi-section file): reset interfaces.
                BT_SHB => self.interfaces.clear(),
                // Any other block type: skip, per the specification.
                _ => {}
            }
        }
    }

    /// Iterate remaining packets.
    pub fn packets(mut self) -> impl Iterator<Item = Result<PcapNgPacket>> {
        std::iter::from_fn(move || self.next_packet().transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr4;
    use crate::packet::PacketMeta;

    fn sample() -> Vec<PacketMeta> {
        let s = Ipv4Addr4::new(203, 0, 113, 1);
        let d = Ipv4Addr4::new(192, 0, 2, 9);
        vec![
            PacketMeta::tcp_syn(Ts::from_micros(1_000_001), s, d, 40000, 23),
            PacketMeta::udp_probe(Ts::from_micros(2_500_000), s, d, 40001, 161),
            PacketMeta::icmp_echo(Ts::from_micros(5_000_000_123), s, d),
        ]
    }

    #[test]
    fn roundtrip() {
        let pkts = sample();
        let mut buf = Vec::new();
        {
            let mut w = PcapNgWriter::new(&mut buf, 101, 65_535).unwrap();
            for p in &pkts {
                w.write_packet(p.ts, &p.to_bytes()).unwrap();
            }
            assert_eq!(w.packet_count(), 3);
            w.finish().unwrap();
        }
        let mut r = PcapNgReader::new(&buf[..]).unwrap();
        let mut got = Vec::new();
        while let Some(p) = r.next_packet().unwrap() {
            got.push(p);
        }
        assert_eq!(r.interface_linktype(0), Some(101));
        assert_eq!(got.len(), 3);
        for (rec, orig) in got.iter().zip(&pkts) {
            assert_eq!(rec.ts, orig.ts);
            assert_eq!(rec.interface, 0);
            let parsed = PacketMeta::parse_ip(&rec.data, rec.ts).unwrap();
            assert_eq!(&parsed, orig);
        }
    }

    #[test]
    fn odd_length_payload_is_padded() {
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, 1, 100).unwrap();
        w.write_packet(Ts::from_secs(1), &[1, 2, 3, 4, 5]).unwrap();
        w.write_packet(Ts::from_secs(2), &[9]).unwrap();
        w.finish().unwrap();
        let got: Vec<_> =
            PcapNgReader::new(&buf[..]).unwrap().packets().map(|p| p.unwrap()).collect();
        assert_eq!(got[0].data, vec![1, 2, 3, 4, 5]);
        assert_eq!(got[1].data, vec![9]);
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, 1, 100).unwrap();
        w.write_packet(Ts::from_secs(1), b"abcd").unwrap();
        w.finish().unwrap();
        // Splice in an unknown 16-byte block (e.g. a name-resolution
        // block) between IDB and EPB — offset 48 = 28 (SHB) + 20 (IDB).
        let mut custom = Vec::new();
        custom.extend_from_slice(&0x0000_0004u32.to_le_bytes());
        custom.extend_from_slice(&16u32.to_le_bytes());
        custom.extend_from_slice(&[0u8; 4]);
        custom.extend_from_slice(&16u32.to_le_bytes());
        let mut spliced = buf[..48].to_vec();
        spliced.extend_from_slice(&custom);
        spliced.extend_from_slice(&buf[48..]);
        let got: Vec<_> =
            PcapNgReader::new(&spliced[..]).unwrap().packets().map(|p| p.unwrap()).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data, b"abcd");
    }

    #[test]
    fn rejects_non_pcapng() {
        // A classic pcap file must be rejected by magic.
        let mut classic = Vec::new();
        let w = crate::pcap::PcapWriter::new(&mut classic, 101, 100).unwrap();
        w.finish().unwrap();
        assert!(matches!(PcapNgReader::new(&classic[..]), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn truncated_block_errors_not_panics() {
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, 1, 100).unwrap();
        w.write_packet(Ts::from_secs(1), &[0u8; 40]).unwrap();
        w.finish().unwrap();
        let cut = &buf[..buf.len() - 6];
        let mut r = PcapNgReader::new(cut).unwrap();
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn corrupt_trailer_detected() {
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, 1, 100).unwrap();
        w.write_packet(Ts::from_secs(1), &[0u8; 8]).unwrap();
        w.finish().unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let mut r = PcapNgReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(NetError::BadLength { .. })));
    }

    #[test]
    fn big_timestamps_survive() {
        // > 2^32 microseconds (≈ 71.6 minutes) exercises the hi/lo split.
        let ts = Ts::from_days(3) + crate::time::Dur::from_micros(123_456);
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, 1, 100).unwrap();
        w.write_packet(ts, &[1, 2, 3, 4]).unwrap();
        w.finish().unwrap();
        let got: Vec<_> =
            PcapNgReader::new(&buf[..]).unwrap().packets().map(|p| p.unwrap()).collect();
        assert_eq!(got[0].ts, ts);
    }
}
