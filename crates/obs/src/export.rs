//! Snapshot types and serializers (JSONL + Prometheus text exposition),
//! plus the periodic file [`Exporter`].
//!
//! Serialization is hand-rolled: the snapshot schema is tiny, names are
//! constrained by [`crate::valid_metric_name`], and keeping `ah-obs`
//! dependency-free means the hot pipeline never pays for a serde tree it
//! does not need.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::recorder::Recorder;

/// One instrument's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Monotone counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state: bucket bounds, per-bucket counts (one more
/// than `bounds` — the final entry is the implicit `+Inf` bucket),
/// total count and sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

/// One named instrument in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (`ah_<crate>_<subsystem>_<name>`).
    pub name: String,
    /// Sorted label pairs (may be empty).
    pub labels: Vec<(String, String)>,
    /// The instrument's value.
    pub value: Value,
}

/// A point-in-time view of a recorder's full registry, sorted by
/// (name, labels).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All registered instruments.
    pub samples: Vec<Sample>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Serialize a snapshot as one JSON object on a single line (JSONL).
///
/// Schema:
/// `{"seq":N,"pos":N,"ts_ms":N,"samples":[{"name":S,"labels":{..},"type":"counter"|"gauge"|"histogram",...}]}`
/// — counters carry `"value"`, gauges `"value"`, histograms `"bounds"`,
/// `"buckets"`, `"count"` and `"sum"`. `pos` is the deterministic
/// pipeline position (packets dispatched) at which the snapshot was
/// taken; `ts_ms` is wall-clock and informational only.
pub fn to_jsonl_line(snap: &Snapshot, seq: u64, pos: u64, ts_ms: u64) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(snap.samples.len());
    for s in &snap.samples {
        let head =
            format!("\"name\":\"{}\",\"labels\":{}", json_escape(&s.name), json_labels(&s.labels));
        let body = match &s.value {
            Value::Counter(v) => format!("{head},\"type\":\"counter\",\"value\":{v}"),
            Value::Gauge(v) => format!("{head},\"type\":\"gauge\",\"value\":{v}"),
            Value::Histogram(h) => format!(
                "{head},\"type\":\"histogram\",\"bounds\":{:?},\"buckets\":{:?},\"count\":{},\"sum\":{}",
                h.bounds, h.buckets, h.count, h.sum
            ),
        };
        parts.push(format!("{{{body}}}"));
    }
    format!("{{\"seq\":{seq},\"pos\":{pos},\"ts_ms\":{ts_ms},\"samples\":[{}]}}", parts.join(","))
}

fn prom_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", json_escape(v))).collect();
    format!("{{{}}}", body.join(","))
}

fn prom_labels_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", json_escape(v))).collect();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

/// Serialize a snapshot in Prometheus text exposition format v0.0.4.
///
/// Counters get a `_total`-style single line, gauges likewise, and
/// histograms expand to cumulative `_bucket{le=...}` series plus `_sum`
/// and `_count`, matching what a Prometheus scraper expects.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for s in &snap.samples {
        let kind = match &s.value {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        };
        if s.name != last_name {
            out.push_str(&format!("# TYPE {} {}\n", s.name, kind));
            last_name = &s.name;
        }
        match &s.value {
            Value::Counter(v) => {
                out.push_str(&format!("{}{} {}\n", s.name, prom_labels(&s.labels), v));
            }
            Value::Gauge(v) => {
                out.push_str(&format!("{}{} {}\n", s.name, prom_labels(&s.labels), v));
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (i, b) in h.buckets.iter().enumerate() {
                    cum += b;
                    let le = match h.bounds.get(i) {
                        Some(bound) => bound.to_string(),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        prom_labels_with_le(&s.labels, &le),
                        cum
                    ));
                }
                out.push_str(&format!("{}_sum{} {}\n", s.name, prom_labels(&s.labels), h.sum));
                out.push_str(&format!("{}_count{} {}\n", s.name, prom_labels(&s.labels), h.count));
            }
        }
    }
    out
}

/// Periodic snapshot-to-file exporter.
///
/// Ticks are driven by a deterministic *pipeline position* (packets
/// dispatched), not by wall-clock, so the set of export points is
/// identical across runs of the same scenario; only the sampled values
/// of wall-clock histograms differ. Each tick appends one line to
/// `<base>.jsonl` and rewrites `<base>.prom` with the latest state.
///
/// I/O failures are counted (see [`Exporter::io_errors`]) and otherwise
/// swallowed: telemetry must never abort a measurement run.
#[derive(Debug)]
pub struct Exporter {
    recorder: Recorder,
    base: PathBuf,
    interval: u64,
    next: u64,
    seq: u64,
    io_errors: u64,
    truncated: bool,
}

impl Exporter {
    /// Create an exporter writing `<base>.jsonl` and `<base>.prom`,
    /// snapshotting every `interval` position units (0 disables
    /// periodic ticks; [`Exporter::export_now`] still works).
    pub fn new(recorder: Recorder, base: impl Into<PathBuf>, interval: u64) -> Self {
        Exporter {
            recorder,
            base: base.into(),
            interval,
            next: interval,
            seq: 0,
            io_errors: 0,
            truncated: false,
        }
    }

    /// Path of the JSONL stream this exporter appends to.
    pub fn jsonl_path(&self) -> PathBuf {
        self.base.with_extension("jsonl")
    }

    /// Path of the Prometheus text file this exporter rewrites.
    pub fn prom_path(&self) -> PathBuf {
        self.base.with_extension("prom")
    }

    /// Number of snapshots written so far.
    pub fn snapshots_written(&self) -> u64 {
        self.seq
    }

    /// Number of I/O errors swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Export if `pos` has reached the next periodic tick.
    pub fn maybe_export(&mut self, pos: u64) {
        if self.interval == 0 || pos < self.next {
            return;
        }
        while self.next <= pos {
            self.next += self.interval;
        }
        self.export_now(pos);
    }

    /// Unconditionally snapshot and write both output files.
    pub fn export_now(&mut self, pos: u64) {
        let snap = self.recorder.snapshot();
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let line = to_jsonl_line(&snap, self.seq, pos, ts_ms);
        let prom = to_prometheus(&snap);
        self.seq += 1;

        if let Some(dir) = self.base.parent() {
            if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
                self.io_errors += 1;
            }
        }
        let jsonl = OpenOptions::new()
            .create(true)
            .truncate(!self.truncated)
            .append(self.truncated)
            .write(true)
            .open(self.jsonl_path())
            .and_then(|mut f| writeln!(f, "{line}"));
        if jsonl.is_err() {
            self.io_errors += 1;
        }
        self.truncated = true;
        if std::fs::write(self.prom_path(), prom).is_err() {
            self.io_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_snapshot() -> Snapshot {
        Snapshot {
            samples: vec![
                Sample {
                    name: "ah_test_stage_packets_total".into(),
                    labels: vec![],
                    value: Value::Counter(42),
                },
                Sample {
                    name: "ah_test_stage_depth_current".into(),
                    labels: vec![("shard".into(), "3".into())],
                    value: Value::Gauge(-7),
                },
                Sample {
                    name: "ah_test_stage_lag_us".into(),
                    labels: vec![],
                    value: Value::Histogram(HistogramSnapshot {
                        bounds: vec![10, 100],
                        buckets: vec![1, 2, 3],
                        count: 6,
                        sum: 777,
                    }),
                },
            ],
        }
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        // A recorder with nothing registered still produces valid output
        // on both serializers: a JSONL object with an empty samples array
        // and an empty (but not malformed) Prometheus page.
        let snap = Snapshot::default();
        assert_eq!(
            to_jsonl_line(&snap, 0, 0, 0),
            "{\"seq\":0,\"pos\":0,\"ts_ms\":0,\"samples\":[]}"
        );
        assert_eq!(to_prometheus(&snap), "");
        assert_eq!(Recorder::new().snapshot(), snap);
    }

    #[test]
    fn prometheus_label_ordering_is_stable() {
        // Registration order of label pairs must not leak into the
        // exposition text: the registry keys on sorted label sets, so two
        // recorders built with permuted label slices serialize
        // byte-identically — a scraper sees one stable series, not two.
        let build = |labels: &[(&str, &str)]| {
            let rec = Recorder::new();
            rec.counter_with("ah_test_stage_packets_total", labels).add(9);
            rec.gauge_with("ah_test_stage_depth_current", labels).set(4);
            rec.snapshot()
        };
        let forward = build(&[("router", "r1"), ("shard", "3")]);
        let reversed = build(&[("shard", "3"), ("router", "r1")]);
        assert_eq!(forward, reversed, "label registration order changed the snapshot");
        assert_eq!(to_prometheus(&forward), to_prometheus(&reversed));
        assert_eq!(to_jsonl_line(&forward, 1, 2, 3), to_jsonl_line(&reversed, 1, 2, 3));
        // Labels render sorted by key, and re-serializing the same
        // snapshot is byte-stable.
        let text = to_prometheus(&forward);
        assert!(text.contains("ah_test_stage_packets_total{router=\"r1\",shard=\"3\"} 9\n"));
        assert_eq!(text, to_prometheus(&forward));
    }

    #[test]
    fn jsonl_schema() {
        let line = to_jsonl_line(&demo_snapshot(), 5, 10_000, 123);
        assert!(line.starts_with("{\"seq\":5,\"pos\":10000,\"ts_ms\":123,\"samples\":["));
        assert!(line.contains(
            "{\"name\":\"ah_test_stage_packets_total\",\"labels\":{},\"type\":\"counter\",\"value\":42}"
        ));
        assert!(line.contains("\"labels\":{\"shard\":\"3\"},\"type\":\"gauge\",\"value\":-7"));
        assert!(line.contains(
            "\"type\":\"histogram\",\"bounds\":[10, 100],\"buckets\":[1, 2, 3],\"count\":6,\"sum\":777"
        ));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn prometheus_schema() {
        let text = to_prometheus(&demo_snapshot());
        assert!(text.contains("# TYPE ah_test_stage_packets_total counter\n"));
        assert!(text.contains("ah_test_stage_packets_total 42\n"));
        assert!(text.contains("ah_test_stage_depth_current{shard=\"3\"} -7\n"));
        // cumulative buckets: 1, 3, 6
        assert!(text.contains("ah_test_stage_lag_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("ah_test_stage_lag_us_bucket{le=\"100\"} 3\n"));
        assert!(text.contains("ah_test_stage_lag_us_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("ah_test_stage_lag_us_sum 777\n"));
        assert!(text.contains("ah_test_stage_lag_us_count 6\n"));
    }

    #[test]
    fn json_escaping() {
        let snap = Snapshot {
            samples: vec![Sample {
                name: "ah_test_stage_odd_total".into(),
                labels: vec![("k".into(), "a\"b\\c\nd".into())],
                value: Value::Counter(1),
            }],
        };
        let line = to_jsonl_line(&snap, 0, 0, 0);
        assert!(line.contains("\"k\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn exporter_ticks_at_positions() {
        let dir = std::env::temp_dir().join("ah-obs-exporter-test");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = Recorder::new();
        let c = rec.counter("ah_test_stage_packets_total");
        let mut ex = Exporter::new(rec.clone(), dir.join("metrics"), 100);
        ex.maybe_export(50); // below first tick
        assert_eq!(ex.snapshots_written(), 0);
        c.add(10);
        ex.maybe_export(100); // tick 1
        c.add(5);
        ex.maybe_export(150); // no tick (next is 200)
        ex.maybe_export(450); // tick 2; next advances past 450
        ex.export_now(460); // final flush
        assert_eq!(ex.snapshots_written(), 3);
        assert_eq!(ex.io_errors(), 0);

        let jsonl = std::fs::read_to_string(ex.jsonl_path()).expect("jsonl written");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"pos\":100"));
        assert!(lines[1].contains("\"pos\":450"));
        assert!(lines[2].contains("\"pos\":460"));

        let prom = std::fs::read_to_string(ex.prom_path()).expect("prom written");
        assert!(prom.contains("ah_test_stage_packets_total 15\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
