//! Fixture: lexer edge cases the mutation harness (`ah-mutate`) leans
//! on. Panic-ish text inside raw strings (any `#` depth), nested block
//! comments, byte strings and char literals is *not* code — a lexer
//! that mis-scanned any of these would both lint phantom findings here
//! and splice mutations into literals. Only the marked sites are real.

pub fn raw_strings_with_hash_delimiters() -> (&'static str, &'static str) {
    let a = r#"x.unwrap() and panic!("hi")"#;
    let b = r##"nested r#"quote"# and .expect("still a string")"##;
    (a, b)
}

/* outer /* inner .unwrap() */ still comment: panic!("no") */
pub fn code_after_nested_block_comment(v: Option<u32>) -> u32 {
    v.unwrap() //~ panic-path
}

pub fn byte_string_literals() -> u8 {
    let s = b"panic!(\"bytes\")";
    let r = br#"br".unwrap()""#;
    let quote = b'\'';
    if r.is_empty() {
        quote
    } else {
        s[0]
    }
}

pub fn char_vs_lifetime<'a>(x: &'a str) -> (char, &'a str) {
    let plain = 'q';
    let escaped = '\u{2603}';
    'label: loop {
        break 'label;
    }
    (if x.is_empty() { plain } else { escaped }, x)
}

pub fn real_finding_after_all_the_edges(v: Option<u32>) -> u32 {
    v.expect("the lexer still sees real code") //~ panic-path
}
