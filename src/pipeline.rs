//! Turnkey end-to-end measurement runs.
//!
//! Wires a [`ScenarioConfig`]'s traffic through every vantage point the
//! paper uses — the telescope, the Merit-like ISP's border routers, the
//! CU-like campus border, and the honeypot fleet — in a single pass, then
//! finalizes detection.
//!
//! Two execution engines share one finalization path:
//!
//! * [`run`] — the serial reference: one vantage stack consumes the
//!   muxed (and optionally fault-injected) stream in generation order.
//! * [`run_parallel`] — the sharded engine: a single-threaded dispatcher
//!   does nothing but drive the traffic mux and hand each raw packet to
//!   the worker shard owning its source IP over a lock-free SPSC ring
//!   ([`ah_simnet::ring`]). Every decision that once required global
//!   stream order — fault injection, aggregator reordering verdicts,
//!   per-router sampling, flow-cache lateness — is a pure function of
//!   the *per-source* (or per-key) subsequence, so each shard recomputes
//!   its own slice of them independently. Shard results return over a
//!   bounded MPSC merge ring ([`ah_simnet::mpsc`]) and fold with
//!   order-insensitive operators, so both engines produce **bitwise
//!   identical** [`RunOutput`]s (see `ARCHITECTURE.md` §11 for the
//!   proof sketch and [`RunOutput::fingerprint`] for the check).
//!
//! Tap experiments (Figures 1/2) are inherently two-phase: the paper
//! derives the hitter list from darknet detection *before* counting
//! hitter packets on the mirrored streams. [`run_taps`] therefore runs
//! the same seeded scenario twice — once to detect, once to measure —
//! exploiting the simulator's determinism as the stand-in for "the day
//! before the tap window".

use ah_core::defs::{Definition, Thresholds};
use ah_core::detector::{AhReport, Detector, DetectorConfig};
use ah_core::health::{PipelineHealth, StageHealth};
use ah_core::impact::{TapAnalyzer, TapSeries};
use ah_flow::cache::CacheStats;
use ah_flow::record::FlowRecord;
use ah_flow::router::{canonical_record_key, FlowDataset, IspConfig, IspModel, RouterId};
use ah_flow::v9::{encode_v9, V9Decoder};
use ah_intel::greynoise::{GnEntry, GreyNoise, IngestStats, PayloadHint};
use ah_mem::{MemScope, Tag};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::{PacketMeta, ScanClass};
use ah_net::time::Ts;
use ah_obs::{Exporter, Recorder};
use ah_simnet::faults::{FaultInjector, FaultPlan, InjectorStats};
use ah_simnet::mpsc::{mpsc, MpscConsumer};
use ah_simnet::ring::ring;
use ah_simnet::rng::hash64;
use ah_simnet::scenario::{Scenario, ScenarioConfig};
use ah_simnet::world::World;
use ah_telescope::capture::{CaptureOutcome, CaptureStats, CaptureSummary, DarkSpace, Telescope};
use ah_telescope::daily::{DailyTracker, DayStats};
use ah_telescope::event::{AggregatorStats, DarknetEvent};
use ah_trace::Tracer;
use ah_wal::record::{fnv1a_fold, RunMeta, RunSeal, WalRecord, FNV_OFFSET};
use ah_wal::{RecoveredLog, WalWriter, WalWriterConfig};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

/// Which vantage points to instantiate for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Build the Merit ISP model (flow collection at 3 border routers).
    pub merit_isp: bool,
    /// Build the CU campus model (flow collection at 1 border router).
    pub cu_isp: bool,
    /// Feed the honeypot fleet.
    pub greynoise: bool,
    /// NetFlow sampling rate for the ISPs (paper: 1:1000; scaled runs use
    /// a lower rate so sampled flows stay statistically meaningful).
    pub sampling_rate: u64,
    /// Inject faults into the packet stream between the traffic mux and
    /// every vantage point (`None` = pristine capture).
    pub faults: Option<FaultPlan>,
    /// Detection thresholds (chaos runs use looser tail cuts so the
    /// hitter lists are large enough to compare).
    pub thresholds: Thresholds,
}

impl RunOptions {
    /// Telescope only — the darknet characterization experiments.
    pub fn darknet_only() -> RunOptions {
        RunOptions {
            merit_isp: false,
            cu_isp: false,
            greynoise: false,
            sampling_rate: 100,
            faults: None,
            thresholds: Thresholds::default(),
        }
    }

    /// Telescope + Merit flows (Tables 2, 4, 8; Figure 5).
    pub fn with_flows() -> RunOptions {
        RunOptions { merit_isp: true, ..RunOptions::darknet_only() }
    }

    /// Everything (honeypot validation runs).
    pub fn full() -> RunOptions {
        RunOptions { merit_isp: true, cu_isp: true, greynoise: true, ..RunOptions::darknet_only() }
    }

    /// Apply a fault plan to the stream feeding every vantage point.
    pub fn with_faults(mut self, plan: FaultPlan) -> RunOptions {
        self.faults = Some(plan);
        self
    }

    /// Override the detection thresholds.
    pub fn with_thresholds(mut self, t: Thresholds) -> RunOptions {
        self.thresholds = t;
        self
    }
}

/// Telemetry plumbing for one run: the [`Recorder`] handed to every
/// pipeline stage plus an optional periodic snapshot [`Exporter`].
///
/// Telemetry is **observation-only**: nothing the pipeline computes ever
/// reads an instrument back, and the exporter is ticked at deterministic
/// *stream positions* (packets delivered, or packets generated on the
/// sharded engine), never wall-clock time — so a
/// run with a live recorder produces a [`RunOutput`] bitwise identical
/// to the same run with [`Telemetry::disabled`]. `tests/telemetry.rs`
/// holds both engines to exactly this standard.
pub struct Telemetry {
    /// Recorder every stage registers its instruments on.
    pub recorder: Recorder,
    /// Periodic snapshot writer (JSONL + Prometheus text files); `None`
    /// means metrics are kept in memory only.
    pub exporter: Option<Exporter>,
    /// Span/journey tracer threaded through every stage ([`ah_trace`]).
    /// Noop by default; like the recorder it is observation-only, so a
    /// live tracer leaves the [`RunOutput`] bitwise identical
    /// (`tests/trace.rs` holds both engines to this).
    pub tracer: Tracer,
    /// Periodic memory-account refresher ([`ah_mem`] → `ah_mem_*`
    /// gauges + peak-pressure trace instants), ticked at the same
    /// deterministic stream positions as the exporter. `None` means
    /// memory telemetry refreshes only once, at finalization.
    pub mem: Option<MemPulse>,
}

impl Telemetry {
    /// No-op telemetry: a noop recorder, no exporter, a noop tracer. All
    /// instrument operations compile to a null-check on this path.
    pub fn disabled() -> Telemetry {
        Telemetry { recorder: Recorder::noop(), exporter: None, tracer: Tracer::noop(), mem: None }
    }

    /// Record metrics on `recorder` without writing snapshot files.
    pub fn new(recorder: Recorder) -> Telemetry {
        Telemetry { recorder, exporter: None, tracer: Tracer::noop(), mem: None }
    }

    /// Record metrics and export periodic snapshots.
    pub fn with_exporter(recorder: Recorder, exporter: Exporter) -> Telemetry {
        Telemetry { recorder, exporter: Some(exporter), tracer: Tracer::noop(), mem: None }
    }

    /// Attach a span tracer (builder-style).
    pub fn with_tracer(mut self, tracer: Tracer) -> Telemetry {
        self.tracer = tracer;
        self
    }

    /// Refresh memory-account telemetry every `every` delivered/generated
    /// packets (builder-style). Meaningful only when [`ah_mem`]
    /// accounting is enabled and this process runs under the
    /// [`ah_mem::TaggedSystem`] allocator (the workspace binaries do).
    pub fn with_mem(mut self, every: u64) -> Telemetry {
        self.mem = Some(MemPulse::new(every));
        self
    }
}

/// Position-driven memory-telemetry pulse: every `every` stream
/// positions, copy the [`ah_mem`] accounts into `ah_mem_*` gauges and
/// drop a peak-pressure instant on the trace when the global live-bytes
/// high-water mark moved. Like the exporter, it advances on stream
/// positions — never wall-clock — and reads nothing back, so it cannot
/// perturb the run.
#[derive(Debug)]
pub struct MemPulse {
    every: u64,
    next: u64,
    peak_seen: i64,
}

impl MemPulse {
    /// Refresh every `every` stream positions (clamped to ≥1).
    pub fn new(every: u64) -> MemPulse {
        let every = every.max(1);
        MemPulse { every, next: every, peak_seen: 0 }
    }

    /// Called with the current stream position from each engine loop.
    fn tick(&mut self, pos: u64, rec: &Recorder, tracer: &Tracer) {
        if pos < self.next {
            return;
        }
        while self.next <= pos {
            self.next += self.every;
        }
        refresh_mem_metrics(rec);
        mem_counter("ah_mem_refresh_ticks_total", rec).inc();
        let peak = ah_mem::global_stats().peak_bytes;
        if peak > self.peak_seen {
            self.peak_seen = peak;
            tracer.instant("ah_mem_peak_live");
        }
    }
}

/// Set one per-tag memory gauge. The metric-name literal comes first so
/// ah-lint's metric-name pass (MEM_FNS) can check it like any
/// counter/gauge/histogram registration.
fn mem_gauge(name: &'static str, rec: &Recorder, tag: &str, value: i64) {
    rec.gauge_with(name, &[("tag", tag)]).set(value);
}

/// Register/fetch an untagged memory counter (name first; see
/// [`mem_gauge`]).
fn mem_counter(name: &'static str, rec: &Recorder) -> ah_obs::Counter {
    rec.counter(name)
}

/// Copy every [`ah_mem`] account into `ah_mem_*` gauges on `rec`.
fn refresh_mem_metrics(rec: &Recorder) {
    let report = ah_mem::report();
    for (tag, st) in report.tags() {
        let label = tag.name();
        mem_gauge("ah_mem_tag_live_bytes", rec, label, st.live_bytes);
        mem_gauge("ah_mem_tag_live_allocs", rec, label, st.live_allocs);
        mem_gauge("ah_mem_tag_peak_bytes", rec, label, st.peak_bytes);
        mem_gauge("ah_mem_tag_total_bytes", rec, label, st.total_bytes as i64);
    }
    mem_gauge("ah_mem_global_live_bytes", rec, "all", report.global.live_bytes);
    mem_gauge("ah_mem_global_peak_bytes", rec, "all", report.global.peak_bytes);
    mem_gauge("ah_mem_peak_rss_bytes", rec, "all", report.peak_rss_bytes() as i64);
}

/// Output of a single-pass run.
pub struct RunOutput {
    /// The synthetic internet the scenario ran over.
    pub world: World,
    /// Aggressive-hitter detection output.
    pub report: AhReport,
    /// Whole-run darknet capture statistics.
    pub capture: CaptureSummary,
    /// Per-day darknet capture statistics.
    pub daily: BTreeMap<u64, DayStats>,
    /// Merit flow dataset, when flows were enabled.
    pub merit_flows: Option<FlowDataset>,
    /// CU flow dataset, when flows were enabled.
    pub cu_flows: Option<FlowDataset>,
    /// GreyNoise-style honeypot profiles, when enabled.
    pub gn_entries: Option<HashMap<Ipv4Addr4, GnEntry>>,
    /// Sources the honeypot fleet saw at all, when enabled.
    pub gn_seen: Option<HashSet<Ipv4Addr4>>,
    /// Simulated span in days.
    pub days: u64,
    /// Total packets generated by the scenario.
    pub generated_packets: u64,
    /// Per-stage input-fate ledgers (graceful-degradation accounting).
    pub health: PipelineHealth,
    /// End-of-run memory report (per-tag peaks + VmHWM), when [`ah_mem`]
    /// accounting was enabled. Excluded from [`RunOutput::fingerprint`]:
    /// memory observations vary run to run and must never define run
    /// identity.
    pub mem: Option<ah_mem::MemReport>,
}

/// The CU campus as an "ISP" with a single border router.
fn cu_isp(world: &World, sampling_rate: u64) -> IspModel {
    IspModel::new(IspConfig::with_prefix_routes(
        world.cu_internal(),
        vec![],
        1,
        vec![1],
        sampling_rate,
    ))
}

fn merit_isp(world: &World, sampling_rate: u64) -> IspModel {
    IspModel::new(IspConfig {
        internal: world.merit_internal(),
        policy: Box::new(world.merit_policy()),
        routers: vec![1, 2, 3],
        sampling_rate,
    })
}

/// The telescope's operational source filter.
///
/// The synthetic address plan reuses several special-purpose v4 ranges
/// (RFC 1918 for the ISPs, benchmarking space for the sensors), so the
/// filter lists only bogons that cannot collide with it. Real deployments
/// would pass `ah_net::prefix::standard_bogons()`.
fn bogon_filter() -> ah_net::prefix::PrefixSet {
    ah_net::prefix::PrefixSet::from_prefixes(
        ["0.0.0.0/8", "127.0.0.0/8", "169.254.0.0/16", "224.0.0.0/4", "240.0.0.0/4"]
            .iter()
            // ah-lint: allow(panic-path, reason = "static prefix literals above; a typo fails every pipeline test at startup")
            .map(|p| p.parse().expect("static prefix")),
    )
}

/// Payload evidence for the honeypot tagger, derived deterministically
/// from the source (the simulator does not carry HTTP payload bytes; see
/// the `intel::greynoise` module docs for this documented substitution).
fn payload_hint(src: Ipv4Addr4, dst_port: Option<u16>) -> PayloadHint {
    match dst_port {
        Some(80) | Some(8080) | Some(443) => match hash64(u64::from(src.to_u32())) % 12 {
            0 => PayloadHint::GoHttp,
            1 => PayloadHint::PythonRequests,
            2 => PayloadHint::HttpReferer,
            _ => PayloadHint::None,
        },
        _ => PayloadHint::None,
    }
}

/// Health ledger for one ISP's flow caches.
fn cache_stage(name: &str, s: CacheStats) -> StageHealth {
    let mut st = StageHealth::new(name);
    st.received = s.received;
    st.accepted = s.accepted;
    st.repaired = s.first_repaired;
    st.discard("duplicate", s.duplicates_suppressed);
    st
}

/// Round-trip the exported flow records through the NetFlow v9 wire
/// format and ledger the result. The v9 path is a validation loopback:
/// the in-memory dataset (µs resolution) stays authoritative, but every
/// record must survive template-based encode/decode.
fn v9_loopback(records: &[FlowRecord], rec: &Recorder) -> StageHealth {
    let mut st = StageHealth::new("flow.v9_export");
    st.received = records.len() as u64;
    let mut dec = V9Decoder::default();
    dec.set_recorder(rec);
    let mut decoded = 0u64;
    for (seq, chunk) in records.chunks(64).enumerate() {
        let wire = encode_v9(chunk, Ts::ZERO, seq as u32, 1, seq == 0);
        if let Ok(recs) = dec.decode(&wire, 1) {
            decoded += recs.len() as u64;
        }
    }
    st.accepted = decoded.min(st.received);
    st.discard("decode_failed", st.received - st.accepted);
    st
}

// --- Shared vantage-point state (one copy per shard) -------------------

fn class_rank(c: ScanClass) -> u8 {
    match c {
        ScanClass::TcpSyn => 0,
        ScanClass::Udp => 1,
        ScanClass::IcmpEcho => 2,
    }
}

/// Total order over darknet-event *content*, used to canonicalize the
/// detector's ingest order. Events with identical keys are interchangeable,
/// so sorting by every field yields one canonical sequence no matter which
/// shard (or hash-map iteration order) produced the events.
#[allow(clippy::type_complexity)]
fn event_sort_key(ev: &DarknetEvent) -> (u32, u16, u8, Ts, Ts, u64, u64, u32, u64, u64, u64, u64) {
    (
        ev.key.src.to_u32(),
        ev.key.dst_port,
        class_rank(ev.key.class),
        ev.start,
        ev.end,
        ev.packets,
        ev.bytes,
        ev.unique_dsts,
        ev.tools.zmap,
        ev.tools.masscan,
        ev.tools.mirai,
        ev.tools.other,
    )
}

/// All vantage-point state for one execution unit — the whole pipeline in
/// the serial engine, one shard's slice of it in the parallel engine.
struct Vantage {
    telescope: Telescope,
    tracker: DailyTracker,
    merit: Option<IspModel>,
    cu: Option<IspModel>,
    gn: Option<GreyNoise>,
    not_dark: u64,
    tracer: Tracer,
}

/// Run `f` under `tag` when the engine's `TAGGED` consume flavor is
/// active; compiles to a plain call in the untagged flavor. A manual
/// [`ah_mem::tag_swap`] pair, not a [`MemScope`] guard, so even the
/// tagged flavor adds no drop glue or unwind paths per packet.
#[inline(always)]
fn tagged<const TAGGED: bool, R>(tag: Tag, f: impl FnOnce() -> R) -> R {
    if TAGGED {
        let prev = ah_mem::tag_swap(tag);
        let r = f();
        ah_mem::tag_restore(prev);
        r
    } else {
        f()
    }
}

/// Everything a shard hands back for the order-insensitive merge.
struct ShardOut {
    events: Vec<DarknetEvent>,
    capture: CaptureStats,
    agg: AggregatorStats,
    filtered: u64,
    not_dark: u64,
    tracker: DailyTracker,
    merit: Option<(CacheStats, FlowDataset)>,
    cu: Option<(CacheStats, FlowDataset)>,
    gn: Option<(HashMap<Ipv4Addr4, GnEntry>, IngestStats)>,
}

impl Vantage {
    fn build(world: &World, opts: &RunOptions, rec: &Recorder, tracer: &Tracer) -> Vantage {
        let mut telescope = {
            let _mem = MemScope::enter(Tag::Telescope);
            Telescope::with_source_filter(
                world.config.dark,
                ah_telescope::timeout::paper_default(),
                bogon_filter(),
            )
        };
        telescope.set_recorder(rec);
        telescope.set_tracer(tracer);
        let merit = opts.merit_isp.then(|| {
            let _mem = MemScope::enter(Tag::Flow);
            let mut m = merit_isp(world, opts.sampling_rate);
            m.set_recorder(rec);
            m.set_tracer(tracer);
            m
        });
        let cu = opts.cu_isp.then(|| {
            let _mem = MemScope::enter(Tag::Flow);
            let mut c = cu_isp(world, opts.sampling_rate);
            c.set_recorder(rec);
            c.set_tracer(tracer);
            c
        });
        let gn = opts.greynoise.then(|| {
            let mut g = {
                let _mem = MemScope::enter(Tag::Detectors);
                // GN's vetting knows the acknowledged orgs' addresses.
                let acked = world.acked_list(64);
                let rdns = world.rdns(64);
                let mut vetted: HashSet<Ipv4Addr4> = HashSet::new();
                for org in world.orgs.iter().filter(|o| o.is_acked()) {
                    for i in 0..64.min(org.size()) {
                        let Some(ip) = org.host(i) else { continue };
                        if acked.matches(ip, &rdns).is_some() {
                            vetted.insert(ip);
                        }
                    }
                }
                GreyNoise::new(world.sensor_set(), vetted)
            };
            {
                // Instruments live in the recorder, which outlives the
                // run — charge them to Obs, not the run-scoped tag.
                let _mem = MemScope::enter(Tag::Obs);
                g.set_recorder(rec);
            }
            g
        });
        Vantage {
            telescope,
            tracker: DailyTracker::new(),
            merit,
            cu,
            gn,
            not_dark: 0,
            tracer: tracer.clone(),
        }
    }

    fn track(&mut self, pkt: &PacketMeta, outcome: CaptureOutcome) {
        match outcome {
            CaptureOutcome::Scan(_) => self.tracker.record(pkt, true),
            CaptureOutcome::NonScan => self.tracker.record(pkt, false),
            CaptureOutcome::NotDark => self.not_dark += 1,
            CaptureOutcome::FilteredSource => {}
        }
    }

    /// Feed one delivered packet to every vantage point. Both engines
    /// run this exact path: every downstream decision is a pure function
    /// of the per-source (or per-key) subsequence, so a shard consuming
    /// only its sources computes exactly what the serial engine does
    /// (see `ARCHITECTURE.md` §11).
    ///
    /// `TAGGED` selects the memory-attribution flavor, once per run
    /// (`ARCHITECTURE.md` §13): the `true` instantiation brackets each
    /// stage call with an [`ah_mem::tag_swap`] pair so per-subsystem
    /// accounts see every allocation; the `false` instantiation
    /// compiles to exactly the pre-accounting hot path — zero added
    /// per-packet instructions, which is what keeps the accounting-off
    /// overhead inside its ≤1% budget. The subsystem `observe` methods
    /// themselves carry no scopes for the same reason.
    fn consume<const TAGGED: bool>(&mut self, pkt: &PacketMeta) {
        // Journey sampling is a pure hash of the source address: it draws
        // no randomness and feeds nothing back into the pipeline.
        let journey = self.tracer.journey_id(pkt.src.to_u32());
        let _trace = (journey != 0)
            .then(|| self.tracer.journey_span("ah_pipeline_vantage_consume", journey));
        let outcome = tagged::<TAGGED, _>(Tag::Telescope, || self.telescope.observe(pkt));
        self.track(pkt, outcome);
        if let Some(m) = self.merit.as_mut() {
            tagged::<TAGGED, _>(Tag::Flow, || m.observe(pkt));
        }
        if let Some(c) = self.cu.as_mut() {
            tagged::<TAGGED, _>(Tag::Flow, || c.observe(pkt));
        }
        if let Some(g) = self.gn.as_mut() {
            tagged::<TAGGED, _>(Tag::Detectors, || {
                g.observe(pkt, payload_hint(pkt.src, pkt.dst_port()))
            });
        }
    }

    /// Monomorphization dispatch for [`Vantage::consume`]: one
    /// predictable branch per packet on a run-constant bool, instead
    /// of tag checks inside every stage.
    #[inline]
    fn consume_dyn(&mut self, tagged_run: bool, pkt: &PacketMeta) {
        if tagged_run {
            self.consume::<true>(pkt);
        } else {
            self.consume::<false>(pkt);
        }
    }

    /// Flush open state and reduce to plain mergeable data.
    fn into_shard_out(mut self) -> ShardOut {
        let events = self.telescope.flush();
        let agg = self.telescope.aggregator_stats();
        let filtered = self.telescope.filtered_packets();
        let capture = self.telescope.stats().clone();
        // Cache stats are snapshotted before `finish` flushes the caches,
        // mirroring the serial health-ledger read order.
        let merit = self.merit.map(|m| (m.cache_stats(), m.finish()));
        let cu = self.cu.map(|c| (c.cache_stats(), c.finish()));
        let gn = self.gn.map(|g| {
            let _mem = MemScope::enter(Tag::Detectors);
            let stats = g.ingest_stats();
            (g.finalize(), stats)
        });
        ShardOut {
            events,
            capture,
            agg,
            filtered,
            not_dark: self.not_dark,
            tracker: self.tracker,
            merit,
            cu,
            gn,
        }
    }
}

// --- The sharded engine ------------------------------------------------

/// Per-shard SPSC ring slot count; each ring carries the raw packets of
/// 1/N of the source space.
const RING_CAPACITY: usize = 4096;

/// One shard's complete result, shipped back to the merge stage over the
/// MPSC ring.
struct ShardResult {
    out: Box<ShardOut>,
    /// Ledger of the shard-local fault injector (`None` on clean runs,
    /// and in [`run_parallel_wal`] where the dispatcher owns the single
    /// global injector).
    injector: Option<InjectorStats>,
    /// Packets this shard delivered to its vantage points.
    delivered: u64,
}

fn shard_of(src: Ipv4Addr4, threads: usize) -> usize {
    (hash64(u64::from(src.to_u32())) % threads as u64) as usize
}

/// Drain the MPSC merge ring, then join the shard threads. Arrival order
/// on the ring is irrelevant — every merge in [`finalize_run`] is
/// commutative and event/record order is re-canonicalized there — so the
/// consumer simply folds results in whatever order shards finish.
/// Joining *after* the drain still propagates shard panics: a panicking
/// shard's producer handle counts itself closed on unwind, so the drain
/// terminates.
fn collect_shards<'scope>(
    tracer: &Tracer,
    mut merge_rx: MpscConsumer<ShardResult>,
    handles: Vec<std::thread::ScopedJoinHandle<'scope, ()>>,
) -> Vec<ShardResult> {
    let _trace = tracer.span("ah_pipeline_merge_collect");
    let _mem = MemScope::enter(Tag::Merge);
    let mut results = Vec::with_capacity(handles.len());
    while let Some(r) = merge_rx.pop_wait() {
        results.push(r);
    }
    for h in handles {
        // ah-lint: allow(panic-path, reason = "a panicking shard thread must propagate the panic rather than silently drop a shard's output")
        h.join().expect("pipeline shard thread");
    }
    results
}

/// Sum the shard-local injector ledgers; `None` when the run is clean.
/// Every [`InjectorStats`] field is a plain count over a disjoint slice
/// of the source space, so the per-shard ledgers sum to exactly the
/// serial injector's.
fn merge_injector_stats(results: &[ShardResult]) -> Option<InjectorStats> {
    let mut it = results.iter().filter_map(|r| r.injector.as_ref());
    let mut acc = *it.next()?;
    for s in it {
        acc.merge(s);
    }
    Some(acc)
}

/// Merge shard outputs and finalize. The serial engine passes a single
/// shard, so both engines share every line of finalization.
#[allow(clippy::too_many_arguments)]
fn finalize_run(
    world: World,
    days: u64,
    generated: u64,
    delivered: u64,
    injector: Option<InjectorStats>,
    shards: Vec<ShardOut>,
    opts: &RunOptions,
    tel: &mut Telemetry,
) -> RunOutput {
    // Merge + detection time, wall-clock. The span value flows only to
    // telemetry output, never into RunOutput, so it cannot perturb
    // determinism.
    let merge_span =
        tel.recorder.histogram("ah_pipeline_merge_duration_us", ah_obs::LATENCY_US_BUCKETS).time();
    let mut shards = shards.into_iter();
    // ah-lint: allow(panic-path, reason = "shard count is clamped to at least 1 in run_parallel, so the shard list is never empty")
    let first = shards.next().expect("at least one shard");
    let mut capture_stats = first.capture;
    let mut agg = first.agg;
    let mut filtered = first.filtered;
    let mut not_dark = first.not_dark;
    let mut tracker = first.tracker;
    let mut events = first.events;
    let mut merit_parts: Vec<_> = first.merit.into_iter().collect();
    let mut cu_parts: Vec<_> = first.cu.into_iter().collect();
    let mut gn_parts: Vec<_> = first.gn.into_iter().collect();
    {
        let _mem = MemScope::enter(Tag::Merge);
        for sh in shards {
            capture_stats.merge(&sh.capture);
            agg.merge(&sh.agg);
            filtered += sh.filtered;
            not_dark += sh.not_dark;
            tracker.absorb(sh.tracker);
            events.extend(sh.events);
            merit_parts.extend(sh.merit);
            cu_parts.extend(sh.cu);
            gn_parts.extend(sh.gn);
        }

        // Canonical ingest order: shard counts (and hash-map iteration)
        // must not leak into the report's record table.
        events.sort_by_key(event_sort_key);
    }
    let mut detector = {
        let _mem = MemScope::enter(Tag::Detectors);
        Detector::new(DetectorConfig {
            thresholds: opts.thresholds,
            dark_size: DarkSpace::new(world.config.dark).size(),
        })
    };
    {
        let _pass = tel.tracer.span("ah_pipeline_detector_pass");
        let _mem = MemScope::enter(Tag::Detectors);
        for ev in &events {
            let journey = tel.tracer.journey_id(ev.key.src.to_u32());
            if journey != 0 {
                // Journey endpoint: a sampled source's packets become
                // darknet events and land in the detector here.
                tel.tracer.journey_instant("ah_pipeline_detector_ingest", journey);
            }
            detector.ingest(ev);
        }
    }

    let (merit, cu, gn) = {
        let _mem = MemScope::enter(Tag::Merge);
        (merge_flow_parts(merit_parts), merge_flow_parts(cu_parts), merge_gn_parts(gn_parts))
    };

    // --- Health ledger, in pipeline order ------------------------------
    let mut health = PipelineHealth::default();
    if let Some(s) = injector {
        let mut st = StageHealth::new("faults.injector");
        st.received = s.input + s.duplicated;
        st.accepted = s.delivered;
        st.discard("dropped", s.dropped);
        st.discard("outage", s.outage_dropped);
        st.discard("truncated", s.truncated_discarded);
        st.discard("corrupt", s.corrupt_discarded);
        health.push(st);
    }
    let mut cap = StageHealth::new("telescope.capture");
    cap.received = delivered;
    cap.accepted = capture_stats.total_packets;
    cap.discard("not_dark", not_dark);
    cap.discard("filtered_source", filtered);
    health.push(cap);
    let mut ev = StageHealth::new("telescope.events");
    ev.received = agg.received;
    ev.accepted = agg.accepted;
    ev.repaired = agg.start_repaired;
    ev.quarantined = agg.quarantined;
    health.push(ev);
    if let Some((s, _)) = merit.as_ref() {
        health.push(cache_stage("flow.merit", *s));
    }
    if let Some((s, _)) = cu.as_ref() {
        health.push(cache_stage("flow.cu", *s));
    }
    if let Some((_, s)) = gn.as_ref() {
        let mut st = StageHealth::new("intel.greynoise");
        st.received = s.received;
        st.accepted = s.accepted;
        st.discard("non_sensor_dst", s.ignored);
        health.push(st);
    }

    let capture = CaptureSummary::from(&capture_stats);
    let report = {
        let _mem = MemScope::enter(Tag::Detectors);
        detector.finalize()
    };
    let (gn_entries, gn_seen) = match gn {
        Some((entries, _)) => {
            let seen = entries.keys().copied().collect();
            (Some(entries), Some(seen))
        }
        None => (None, None),
    };
    let merit_flows = merit.map(|(_, d)| d);
    if let Some(flows) = merit_flows.as_ref() {
        health.push(v9_loopback(&flows.records, &tel.recorder));
    }
    drop(merge_span);
    // Closing memory snapshot: refresh the `ah_mem_*` gauges one last
    // time (so the final export below carries the end-of-run accounts)
    // and capture the structured report. Reading the accounts feeds
    // nothing back into the pipeline, so this is determinism-neutral.
    let mem = if ah_mem::accounting_enabled() {
        if tel.recorder.is_enabled() {
            refresh_mem_metrics(&tel.recorder);
        }
        Some(ah_mem::report())
    } else {
        None
    };
    // Mirror the finished ledgers as `ah_core_health_*` gauges and flush
    // one final snapshot at the end-of-stream position so the exported
    // files always cover the completed run.
    health.export_metrics(&tel.recorder);
    if let Some(ex) = tel.exporter.as_mut() {
        // The closing snapshot's position must not run backwards past any
        // periodic tick: the serial and WAL engines tick at *delivered*
        // positions (which duplication faults can push past `generated`),
        // the non-WAL sharded engine at *generated* positions (which drop
        // faults can push past `delivered`). The max covers both.
        ex.export_now(delivered.max(generated));
    }
    RunOutput {
        world,
        report,
        capture,
        daily: tracker.finalize(),
        merit_flows,
        cu_flows: cu.map(|(_, d)| d),
        gn_entries,
        gn_seen,
        days,
        generated_packets: generated,
        health,
        mem,
    }
}

/// Merge per-shard flow datasets: cache counters sum, records concatenate
/// and re-sort by the canonical total order, truth counters sum.
fn merge_flow_parts(parts: Vec<(CacheStats, FlowDataset)>) -> Option<(CacheStats, FlowDataset)> {
    let mut parts = parts.into_iter();
    let (mut stats, mut ds) = parts.next()?;
    for (s, d) in parts {
        stats.merge(&s);
        ds.records.extend(d.records);
        for (k, c) in d.router_days {
            let e = ds.router_days.entry(k).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
    }
    ds.records.sort_by_key(canonical_record_key);
    Some((stats, ds))
}

/// Merge per-shard honeypot output. Entry maps are keyed by source IP and
/// sources are shard-disjoint, so the union is exact.
#[allow(clippy::type_complexity)]
fn merge_gn_parts(
    parts: Vec<(HashMap<Ipv4Addr4, GnEntry>, IngestStats)>,
) -> Option<(HashMap<Ipv4Addr4, GnEntry>, IngestStats)> {
    let mut parts = parts.into_iter();
    let (mut map, mut stats) = parts.next()?;
    for (m, s) in parts {
        map.extend(m);
        stats.received += s.received;
        stats.accepted += s.accepted;
        stats.ignored += s.ignored;
    }
    Some((map, stats))
}

/// Run a scenario through every requested vantage point and detect.
pub fn run(cfg: ScenarioConfig, opts: RunOptions) -> RunOutput {
    run_with_recorder(cfg, opts, &mut Telemetry::disabled())
}

/// [`run`] with live telemetry: every stage registers its instruments on
/// `tel.recorder`, and `tel.exporter` (if any) is ticked at deterministic
/// stream positions. The returned [`RunOutput`] is bitwise identical to a
/// [`run`] of the same inputs.
pub fn run_with_recorder(cfg: ScenarioConfig, opts: RunOptions, tel: &mut Telemetry) -> RunOutput {
    let days = cfg.days;
    let mut sc = Scenario::build(cfg);
    let world = {
        let _mem = MemScope::enter(Tag::Mux);
        sc.world.clone()
    };
    let mut vantage = Vantage::build(&world, &opts, &tel.recorder, &tel.tracer);
    let m_packets = tel.recorder.counter("ah_pipeline_mux_packets_delivered_total");
    let m_bytes = tel.recorder.counter("ah_pipeline_mux_bytes_delivered_total");
    let rec = tel.recorder.clone();
    let tracer = tel.tracer.clone();

    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut injector = {
        let _mem = MemScope::enter(Tag::Mux);
        opts.faults.map(FaultInjector::new)
    };
    if let Some(inj) = injector.as_mut() {
        inj.set_tracer(&tracer);
    }
    {
        // Pre-warm this thread's trace buffer under the Trace tag so its
        // allocation never lands on a run-scoped account mid-stream.
        let _mem = MemScope::enter(Tag::Trace);
        tracer.set_track("ah_pipeline_serial_main", 0);
    }
    {
        let exporter = &mut tel.exporter;
        let mem_pulse = &mut tel.mem;
        // Pick the consume flavor once: tagged attribution only when
        // accounting is on (ARCHITECTURE.md §13).
        let tagged_run = ah_mem::accounting_enabled();
        let mut consume = |pkt: &PacketMeta| {
            delivered += 1;
            m_packets.inc();
            m_bytes.add(u64::from(pkt.wire_len));
            vantage.consume_dyn(tagged_run, pkt);
            if let Some(ex) = exporter.as_mut() {
                ex.maybe_export(delivered);
            }
            if let Some(mp) = mem_pulse.as_mut() {
                mp.tick(delivered, &rec, &tracer);
            }
        };
        let _drive = tracer.span("ah_pipeline_mux_drive");
        sc.mux.drive(|pkt| {
            generated += 1;
            match injector.as_mut() {
                Some(inj) => inj.apply(pkt, &mut consume),
                None => consume(pkt),
            }
        });
        if let Some(inj) = injector.as_mut() {
            inj.flush(&mut consume);
        }
    }
    let inj_stats = injector.map(|i| i.stats());
    finalize_run(
        world,
        days,
        generated,
        delivered,
        inj_stats,
        vec![vantage.into_shard_out()],
        &opts,
        tel,
    )
}

/// Run the same pipeline on `threads` worker shards.
///
/// The dispatcher is a pure router: it drives the traffic mux and pushes
/// each raw packet onto the SPSC ring of the shard owning the packet's
/// source IP. Each shard runs its *own* fault injector (fault verdicts
/// are keyed by source and per-source sequence number, so a shard's
/// substream reproduces the serial verdicts exactly — see
/// [`ah_simnet::faults`]) and its own vantage stack, whose reordering,
/// sampling, and lateness decisions are all per-key pure. Shard results
/// return over a bounded MPSC merge ring ([`ah_simnet::mpsc`]) and fold
/// commutatively.
///
/// The output is bitwise identical to [`run`] with the same inputs;
/// `threads == 0` or `1` still goes through the sharded path (with one
/// worker), which is useful for isolating engine differences.
pub fn run_parallel(cfg: ScenarioConfig, opts: RunOptions, threads: usize) -> RunOutput {
    run_parallel_with_recorder(cfg, opts, threads, &mut Telemetry::disabled())
}

/// [`run_parallel`] with live telemetry. Dispatcher-side instruments add
/// stall timing (how long the dispatcher blocked on a full shard ring)
/// and per-shard occupancy high-water marks for both ring kinds on top
/// of the stage instruments the shards register themselves. Packet order
/// on every ring is identical with telemetry on or off, so the output
/// stays bitwise identical to [`run`] / [`run_parallel`].
pub fn run_parallel_with_recorder(
    cfg: ScenarioConfig,
    opts: RunOptions,
    threads: usize,
    tel: &mut Telemetry,
) -> RunOutput {
    let threads = threads.max(1);
    let days = cfg.days;
    let mut sc = Scenario::build(cfg);
    let world = {
        let _mem = MemScope::enter(Tag::Mux);
        sc.world.clone()
    };
    let rec = tel.recorder.clone();
    let tracer = tel.tracer.clone();

    let m_stalls = rec.counter("ah_pipeline_dispatch_stalls_total");
    let m_stall_us = rec.histogram("ah_pipeline_dispatch_stall_us", ah_obs::LATENCY_US_BUCKETS);
    // Stall timing needs a try-push-then-spin sequence instead of a plain
    // spinning push; both deliver the packet at the same stream position,
    // so the split is gated on the recorder rather than always paid.
    let time_stalls = rec.is_enabled();

    let mut producers = Vec::with_capacity(threads);
    let mut consumers = Vec::with_capacity(threads);
    {
        let _mem = MemScope::enter(Tag::Mux);
        for _ in 0..threads {
            let (tx, rx) = ring::<PacketMeta>(RING_CAPACITY);
            producers.push(tx);
            consumers.push(rx);
        }
    }
    let (merge_txs, merge_rx) = {
        let _mem = MemScope::enter(Tag::Merge);
        mpsc::<ShardResult>(threads, threads)
    };

    let mut generated = 0u64;
    let results = std::thread::scope(|s| {
        let world_ref = &world;
        let opts_ref = &opts;
        let rec_ref = &rec;
        let tracer_ref = &tracer;
        let handles: Vec<_> = consumers
            .into_iter()
            .zip(merge_txs)
            .enumerate()
            .map(|(i, (mut rx, mut mtx))| {
                s.spawn(move || {
                    {
                        let _mem = MemScope::enter(Tag::Trace);
                        tracer_ref.set_track("ah_pipeline_shard_worker", i as u64 + 1);
                    }
                    let mut v = Vantage::build(world_ref, opts_ref, rec_ref, tracer_ref);
                    let m_packets = rec_ref.counter("ah_pipeline_mux_packets_delivered_total");
                    let m_bytes = rec_ref.counter("ah_pipeline_mux_bytes_delivered_total");
                    // Shard-local injector: fault verdicts are a pure
                    // function of (source, per-source index), so this
                    // shard's substream yields exactly the serial
                    // decisions for its slice of the source space.
                    let mut injector = {
                        let _mem = MemScope::enter(Tag::Mux);
                        opts_ref.faults.map(FaultInjector::new)
                    };
                    if let Some(inj) = injector.as_mut() {
                        inj.set_tracer(tracer_ref);
                    }
                    let mut delivered = 0u64;
                    {
                        let tagged_run = ah_mem::accounting_enabled();
                        let mut consume = |pkt: &PacketMeta| {
                            delivered += 1;
                            m_packets.inc();
                            m_bytes.add(u64::from(pkt.wire_len));
                            v.consume_dyn(tagged_run, pkt);
                        };
                        while let Some(pkt) = rx.pop_wait() {
                            let journey = tracer_ref.journey_id(pkt.src.to_u32());
                            let _pop = (journey != 0).then(|| {
                                tracer_ref.journey_span("ah_pipeline_shard_consume", journey)
                            });
                            match injector.as_mut() {
                                Some(inj) => inj.apply(&pkt, &mut consume),
                                None => consume(&pkt),
                            }
                        }
                        if let Some(inj) = injector.as_mut() {
                            inj.flush(&mut consume);
                        }
                    }
                    let result = {
                        let _mem = MemScope::enter(Tag::Merge);
                        ShardResult {
                            out: Box::new(v.into_shard_out()),
                            injector: injector.map(|i| i.stats()),
                            delivered,
                        }
                    };
                    mtx.push(result);
                    // Publish before reading the peak: the high-water
                    // mark updates on reservation, and this shard's
                    // final reservation is the interesting one.
                    mtx.flush();
                    let shard = i.to_string();
                    rec_ref
                        .gauge_with(
                            "ah_pipeline_merge_ring_occupancy_hwm",
                            &[("shard", shard.as_str())],
                        )
                        .set(mtx.high_water_mark() as i64);
                    mtx.close();
                })
            })
            .collect();

        {
            let exporter = &mut tel.exporter;
            let mem_pulse = &mut tel.mem;
            {
                let _mem = MemScope::enter(Tag::Trace);
                tracer.set_track("ah_pipeline_dispatch_main", 0);
            }
            let _drive = tracer.span("ah_pipeline_mux_drive");
            sc.mux.drive(|pkt| {
                generated += 1;
                let shard = shard_of(pkt.src, threads);
                let journey = tracer.journey_id(pkt.src.to_u32());
                let _route = (journey != 0)
                    .then(|| tracer.journey_span("ah_pipeline_dispatch_route", journey));
                if time_stalls {
                    if let Err(back) = producers[shard].try_push(*pkt) {
                        let t0 = std::time::Instant::now();
                        tracer.instant("ah_pipeline_dispatch_stall");
                        producers[shard].push(back);
                        m_stalls.inc();
                        m_stall_us.observe(t0.elapsed().as_micros() as u64);
                    }
                } else {
                    producers[shard].push(*pkt);
                }
                if let Some(ex) = exporter.as_mut() {
                    // The dispatcher never sees post-fault deliveries,
                    // so periodic snapshots tick at *generated* stream
                    // positions on this engine — still deterministic
                    // and monotone; the closing snapshot in
                    // `finalize_run` covers the end of stream.
                    ex.maybe_export(generated);
                }
                if let Some(mp) = mem_pulse.as_mut() {
                    mp.tick(generated, &rec, &tracer);
                }
            });
        }
        for (i, p) in producers.into_iter().enumerate() {
            // Read the peak occupancy before close() consumes the
            // producer; one gauge per shard, labeled by shard index.
            let shard = i.to_string();
            rec.gauge_with("ah_pipeline_ring_occupancy_hwm", &[("shard", shard.as_str())])
                .set(p.high_water_mark() as i64);
            p.close();
        }
        collect_shards(&tracer, merge_rx, handles)
    });
    let delivered: u64 = results.iter().map(|r| r.delivered).sum();
    let inj_stats = merge_injector_stats(&results);
    let shards: Vec<ShardOut> = results.into_iter().map(|r| *r.out).collect();
    finalize_run(world, days, generated, delivered, inj_stats, shards, &opts, tel)
}

// --- Durable runs: write-ahead logging, resume, and replay -------------

/// Durable-run configuration: where the write-ahead log lives, its
/// group-commit/rotation tunables, and the optional interruption points
/// used by chaos tests and the CI crash-recovery gate.
#[derive(Debug, Clone)]
pub struct WalRun {
    /// Directory holding the log (`*.seg` + `wal.idx`).
    pub dir: PathBuf,
    /// Append-path tunables (group-commit batch, segment size).
    pub writer: WalWriterConfig,
    /// Suspend cleanly after this many delivered packets: commit the
    /// log, leave it unsealed, and return [`WalOutcome::Suspended`].
    pub suspend_after: Option<u64>,
    /// Abort the process with a deliberately torn tail after this many
    /// delivered packets (crash drills; the process does not return).
    pub crash_after: Option<u64>,
}

impl WalRun {
    /// A durable run writing to `dir` with default tunables and no
    /// interruption points.
    pub fn new(dir: impl Into<PathBuf>) -> WalRun {
        WalRun {
            dir: dir.into(),
            writer: WalWriterConfig::default(),
            suspend_after: None,
            crash_after: None,
        }
    }

    /// Suspend after `n` delivered packets.
    pub fn suspend_after(mut self, n: u64) -> WalRun {
        self.suspend_after = Some(n);
        self
    }

    /// Crash (abort) with a torn tail after `n` delivered packets.
    pub fn crash_after(mut self, n: u64) -> WalRun {
        self.crash_after = Some(n);
        self
    }
}

/// Result of a durable run: either a finished [`RunOutput`] (log sealed)
/// or a clean suspension (log committed but unsealed, ready for
/// [`resume_wal`]).
pub enum WalOutcome {
    /// The run finished; the log is sealed and replayable.
    Completed(Box<RunOutput>),
    /// The run suspended at `delivered` packets.
    Suspended {
        /// Packets delivered (and logged) before suspension.
        delivered: u64,
        /// Frames durable on disk at suspension (meta frame included).
        durable_seq: u64,
    },
}

impl WalOutcome {
    /// Unwrap a completed run; `None` if the run suspended.
    pub fn completed(self) -> Option<Box<RunOutput>> {
        match self {
            WalOutcome::Completed(out) => Some(out),
            WalOutcome::Suspended { .. } => None,
        }
    }
}

/// The meta record a durable run writes as frame 0.
fn wal_meta(cfg: &ScenarioConfig, opts: &RunOptions) -> RunMeta {
    RunMeta {
        label: cfg.label.clone(),
        seed: cfg.seed,
        days: cfg.days,
        year: cfg.year,
        benign: cfg.benign,
        day0_weekday: cfg.day0_weekday,
        merit_isp: opts.merit_isp,
        cu_isp: opts.cu_isp,
        greynoise: opts.greynoise,
        sampling_rate: opts.sampling_rate,
        thresholds: opts.thresholds,
        faults: opts.faults,
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reject a resume/replay whose scenario or options differ from the ones
/// the log was written under — silently mixing them would "recover" into
/// a run that never happened.
fn check_meta(meta: &RunMeta, cfg: &ScenarioConfig, opts: &RunOptions) -> io::Result<()> {
    let want = wal_meta(cfg, opts);
    if meta != &want {
        return Err(invalid(format!(
            "WAL was written under a different scenario/options (log meta: {meta:?}, requested: {want:?})"
        )));
    }
    Ok(())
}

/// Mutable state threaded through the serial durable delivery path. A
/// plain struct + free function instead of a closure so the drive loop
/// can read `stop` between `FaultInjector::apply` calls.
struct WalDrive<'a> {
    vantage: &'a mut Vantage,
    writer: &'a mut WalWriter,
    exporter: &'a mut Option<Exporter>,
    mem: &'a mut Option<MemPulse>,
    rec: Recorder,
    m_packets: ah_obs::Counter,
    m_bytes: ah_obs::Counter,
    scratch: Vec<u8>,
    /// Total deliveries seen, recovered prefix included.
    delivered: u64,
    /// Deliveries already applied from the recovered log (0 for a fresh
    /// run). The first `prefix` deliveries of the re-driven stream are
    /// skipped: the vantage points already consumed them from the log.
    prefix: u64,
    /// Rolling FNV over the recovered prefix's frame payloads; the
    /// re-driven stream must reproduce it bit for bit at the crossing.
    prefix_hash: u64,
    /// Rolling FNV over every delivery's frame payload.
    packet_hash: u64,
    suspend_after: Option<u64>,
    crash_after: Option<u64>,
    stop: bool,
    io_err: Option<io::Error>,
    tracer: Tracer,
}

fn wal_deliver(d: &mut WalDrive<'_>, pkt: &PacketMeta) {
    if d.stop || d.io_err.is_some() {
        // An injector apply/flush can emit several packets per call;
        // everything past the interruption point is dropped from this
        // process and regenerated deterministically on resume.
        return;
    }
    d.delivered += 1;
    {
        let _mem = MemScope::enter(Tag::Wal);
        d.scratch.clear();
        WalRecord::Packet(*pkt).encode_payload(&mut d.scratch);
    }
    d.packet_hash = fnv1a_fold(d.packet_hash, &d.scratch);
    if d.delivered <= d.prefix {
        // Fast-forward over the recovered prefix. At the crossing, the
        // rolling hash over the re-generated stream must equal the hash
        // over what the log actually held.
        if d.delivered == d.prefix && d.packet_hash != d.prefix_hash {
            d.io_err =
                Some(invalid("recovered WAL prefix diverges from the deterministic packet stream"));
            d.stop = true;
            return;
        }
    } else {
        if let Err(e) = d.writer.append_payload(&d.scratch) {
            d.io_err = Some(e);
            d.stop = true;
            return;
        }
        let journey = d.tracer.journey_id(pkt.src.to_u32());
        if journey != 0 {
            d.tracer.journey_instant("ah_pipeline_wal_append", journey);
        }
        d.m_packets.inc();
        d.m_bytes.add(u64::from(pkt.wire_len));
        d.vantage.consume_dyn(ah_mem::accounting_enabled(), pkt);
        if let Some(ex) = d.exporter.as_mut() {
            ex.maybe_export(d.delivered);
        }
        if let Some(mp) = d.mem.as_mut() {
            mp.tick(d.delivered, &d.rec, &d.tracer);
        }
    }
    if d.crash_after == Some(d.delivered) {
        d.writer.crash_with_torn_tail();
    }
    if d.suspend_after == Some(d.delivered) {
        d.stop = true;
    }
}

/// Serial durable run: like [`run_with_recorder`], but every delivered
/// packet is appended to a write-ahead log before the vantage points
/// consume it. A completed run seals the log (making it replayable via
/// [`replay_wal`]); an interrupted one leaves a committed prefix that
/// [`resume_wal`] picks up mid-simulation.
pub fn run_wal(
    cfg: ScenarioConfig,
    opts: RunOptions,
    wal: &WalRun,
    tel: &mut Telemetry,
) -> io::Result<WalOutcome> {
    let mut writer = WalWriter::create(&wal.dir, wal.writer, &tel.recorder)?;
    writer.append(&WalRecord::Meta(wal_meta(&cfg, &opts)))?;
    writer.commit()?;
    drive_wal_serial(cfg, opts, wal, tel, writer, None)
}

/// Shared serial drive for fresh ([`run_wal`]) and resumed
/// ([`resume_wal`]) durable runs. `recovered` carries the vantage stack
/// already fed with the durable prefix, plus that prefix's length and
/// rolling payload hash.
fn drive_wal_serial(
    cfg: ScenarioConfig,
    opts: RunOptions,
    wal: &WalRun,
    tel: &mut Telemetry,
    mut writer: WalWriter,
    recovered: Option<(Vantage, u64, u64)>,
) -> io::Result<WalOutcome> {
    let days = cfg.days;
    let mut sc = Scenario::build(cfg);
    let world = {
        let _mem = MemScope::enter(Tag::Mux);
        sc.world.clone()
    };
    writer.set_tracer(&tel.tracer);
    let (mut vantage, prefix, prefix_hash) = match recovered {
        Some((v, n, h)) => (v, n, h),
        None => (Vantage::build(&world, &opts, &tel.recorder, &tel.tracer), 0, FNV_OFFSET),
    };
    let m_packets = tel.recorder.counter("ah_pipeline_mux_packets_delivered_total");
    let m_bytes = tel.recorder.counter("ah_pipeline_mux_bytes_delivered_total");
    let mut generated = 0u64;
    let mut injector = {
        let _mem = MemScope::enter(Tag::Mux);
        opts.faults.map(FaultInjector::new)
    };
    if let Some(inj) = injector.as_mut() {
        inj.set_tracer(&tel.tracer);
    }
    {
        // Pre-warm the trace buffer under the Trace tag (see
        // `run_with_recorder`).
        let _mem = MemScope::enter(Tag::Trace);
        tel.tracer.set_track("ah_pipeline_serial_main", 0);
    }
    let drive_span = tel.tracer.span("ah_pipeline_mux_drive");
    let mut d = WalDrive {
        vantage: &mut vantage,
        writer: &mut writer,
        exporter: &mut tel.exporter,
        mem: &mut tel.mem,
        rec: tel.recorder.clone(),
        m_packets,
        m_bytes,
        scratch: Vec::new(),
        delivered: 0,
        prefix,
        prefix_hash,
        packet_hash: FNV_OFFSET,
        suspend_after: wal.suspend_after,
        crash_after: wal.crash_after,
        stop: false,
        io_err: None,
        tracer: tel.tracer.clone(),
    };
    while !d.stop && d.io_err.is_none() {
        let Some(pkt) = sc.mux.next_packet() else { break };
        generated += 1;
        match injector.as_mut() {
            Some(inj) => inj.apply(&pkt, &mut |p| wal_deliver(&mut d, p)),
            None => wal_deliver(&mut d, &pkt),
        }
    }
    if !d.stop && d.io_err.is_none() {
        if let Some(inj) = injector.as_mut() {
            inj.flush(&mut |p| wal_deliver(&mut d, p));
        }
    }
    let delivered = d.delivered;
    let packet_hash = d.packet_hash;
    let suspended = d.stop;
    let io_err = d.io_err.take();
    drop(d);
    drop(drive_span);
    if let Some(e) = io_err {
        return Err(e);
    }
    writer.commit()?;
    if suspended {
        return Ok(WalOutcome::Suspended { delivered, durable_seq: writer.durable_seq() });
    }
    let inj_stats = injector.map(|i| i.stats());
    writer.seal(RunSeal { generated, delivered, packet_hash, injector: inj_stats })?;
    let out = finalize_run(
        world,
        days,
        generated,
        delivered,
        inj_stats,
        vec![vantage.into_shard_out()],
        &opts,
        tel,
    );
    Ok(WalOutcome::Completed(Box::new(out)))
}

/// A vantage stack fed straight from a recovered log, plus everything
/// needed to validate and continue it.
struct WalFeed {
    world: World,
    vantage: Vantage,
    meta: Option<RunMeta>,
    log: RecoveredLog,
    /// Packet frames consumed from the log.
    packets: u64,
    /// Rolling FNV over the consumed packet frames' payloads.
    hash: u64,
}

/// Recover `dir` and feed every durable packet into a fresh vantage
/// stack — the shared front half of [`resume_wal`] and [`replay_wal`].
fn feed_from_wal(
    cfg: &ScenarioConfig,
    opts: &RunOptions,
    dir: &Path,
    tel: &mut Telemetry,
) -> io::Result<WalFeed> {
    let world = {
        let _mem = MemScope::enter(Tag::Mux);
        World::new(cfg.world.clone())
    };
    let mut vantage = Vantage::build(&world, opts, &tel.recorder, &tel.tracer);
    let m_replay = tel.recorder.counter("ah_wal_replay_packets_total");
    let tracer = tel.tracer.clone();
    {
        // Pre-warm the trace buffer under the Trace tag (see
        // `run_with_recorder`).
        let _mem = MemScope::enter(Tag::Trace);
        tracer.set_track("ah_pipeline_serial_main", 0);
    }
    let _scan = tracer.span("ah_wal_recover_scan");
    let mut meta: Option<RunMeta> = None;
    let mut packets = 0u64;
    let mut hash = FNV_OFFSET;
    let log = ah_wal::recover(dir, &tel.recorder, |_, payload, record| match record {
        WalRecord::Meta(m) => meta = Some(m),
        WalRecord::Packet(p) => {
            packets += 1;
            hash = fnv1a_fold(hash, payload);
            let journey = tracer.journey_id(p.src.to_u32());
            if journey != 0 {
                tracer.journey_instant("ah_wal_replay_packet", journey);
            }
            vantage.consume_dyn(ah_mem::accounting_enabled(), &p);
            m_replay.inc();
        }
        WalRecord::Event(_) | WalRecord::Flow(_) | WalRecord::Seal(_) => {}
    })?;
    Ok(WalFeed { world, vantage, meta, log, packets, hash })
}

/// Finalize a sealed log's feed into a [`RunOutput`] without simulating:
/// the generated/delivered totals and injector ledger come from the seal
/// itself.
fn finalize_sealed(
    feed: WalFeed,
    seal: RunSeal,
    days: u64,
    opts: &RunOptions,
    tel: &mut Telemetry,
) -> io::Result<Box<RunOutput>> {
    if seal.delivered != feed.packets {
        return Err(invalid(format!(
            "seal records {} delivered packets but the log holds {}",
            seal.delivered, feed.packets
        )));
    }
    if seal.packet_hash != feed.hash {
        return Err(invalid("sealed packet-stream hash does not match the log contents"));
    }
    let out = finalize_run(
        feed.world,
        days,
        seal.generated,
        seal.delivered,
        seal.injector,
        vec![feed.vantage.into_shard_out()],
        opts,
        tel,
    );
    Ok(Box::new(out))
}

/// Re-run detection over a sealed log without re-simulating: the vantage
/// points consume the stored packet stream, then finalization runs with
/// the seal's totals. Produces a [`RunOutput`] bitwise identical to the
/// live run that wrote the log — same fingerprint, same daily AH lists.
pub fn replay_wal(
    cfg: ScenarioConfig,
    opts: RunOptions,
    dir: &Path,
    tel: &mut Telemetry,
) -> io::Result<Box<RunOutput>> {
    tel.recorder.counter("ah_wal_replay_runs_total").inc();
    let feed = feed_from_wal(&cfg, &opts, dir, tel)?;
    let Some(seal) = feed.log.seal else {
        return Err(invalid("WAL is not sealed (interrupted run?) — use resume_wal"));
    };
    let Some(meta) = feed.meta.clone() else {
        return Err(invalid("WAL holds no meta record"));
    };
    check_meta(&meta, &cfg, &opts)?;
    finalize_sealed(feed, seal, cfg.days, &opts, tel)
}

/// Resume an interrupted durable run mid-simulation.
///
/// The durable prefix is recovered (truncating any torn/corrupt tail)
/// and fed into a fresh vantage stack; the deterministic generator and
/// fault injector are then re-driven from the seed with the first
/// `prefix` deliveries skipped — verified against the log via a rolling
/// payload hash at the crossing — and the run continues appending where
/// the crash or suspension left off. Resuming a *sealed* log degenerates
/// to [`replay_wal`]; resuming an empty directory is a fresh [`run_wal`].
/// The continuation is serial; its output is still bitwise identical to
/// an uninterrupted run at any thread count.
pub fn resume_wal(
    cfg: ScenarioConfig,
    opts: RunOptions,
    wal: &WalRun,
    tel: &mut Telemetry,
) -> io::Result<WalOutcome> {
    tel.recorder.counter("ah_wal_resume_runs_total").inc();
    let feed = feed_from_wal(&cfg, &opts, &wal.dir, tel)?;
    if let Some(seal) = feed.log.seal {
        let Some(meta) = feed.meta.clone() else {
            return Err(invalid("WAL holds no meta record"));
        };
        check_meta(&meta, &cfg, &opts)?;
        return finalize_sealed(feed, seal, cfg.days, &opts, tel).map(WalOutcome::Completed);
    }
    let Some(meta) = feed.meta.clone() else {
        if feed.log.next_seq == 0 {
            return run_wal(cfg, opts, wal, tel);
        }
        return Err(invalid("WAL holds frames but no meta record"));
    };
    check_meta(&meta, &cfg, &opts)?;
    let writer = WalWriter::resume(&wal.dir, wal.writer, feed.log.next_seq, &tel.recorder)?;
    drive_wal_serial(cfg, opts, wal, tel, writer, Some((feed.vantage, feed.packets, feed.hash)))
}

/// Parallel durable run: the sharded engine with the dispatcher owning
/// the run's *single* fault injector and appending every delivered
/// packet to the write-ahead log before shipping it — already post-fault
/// — to the shard owning its source. The shards are pure consumers.
///
/// Keeping the injector on the dispatcher here (unlike
/// [`run_parallel_with_recorder`], where it is sharded) preserves the
/// journaling invariant: dispatcher append order equals serial delivered
/// order, so the log is *byte-identical* to the one [`run_wal`] writes —
/// a log written at 8 threads resumes and replays exactly like one
/// written at 1, and the determinism suite pins the segment bytes
/// themselves. The vantage points downstream are per-key pure, so the
/// shards reproduce the serial output from their post-fault substreams.
pub fn run_parallel_wal(
    cfg: ScenarioConfig,
    opts: RunOptions,
    threads: usize,
    wal: &WalRun,
    tel: &mut Telemetry,
) -> io::Result<WalOutcome> {
    let threads = threads.max(1);
    let days = cfg.days;
    let mut writer = WalWriter::create(&wal.dir, wal.writer, &tel.recorder)?;
    writer.append(&WalRecord::Meta(wal_meta(&cfg, &opts)))?;
    writer.commit()?;

    let mut sc = Scenario::build(cfg);
    let world = {
        let _mem = MemScope::enter(Tag::Mux);
        sc.world.clone()
    };
    let rec = tel.recorder.clone();
    let tracer = tel.tracer.clone();
    writer.set_tracer(&tracer);
    let m_packets = rec.counter("ah_pipeline_mux_packets_delivered_total");
    let m_bytes = rec.counter("ah_pipeline_mux_bytes_delivered_total");

    let mut producers = Vec::with_capacity(threads);
    let mut consumers = Vec::with_capacity(threads);
    {
        let _mem = MemScope::enter(Tag::Mux);
        for _ in 0..threads {
            let (tx, rx) = ring::<PacketMeta>(RING_CAPACITY);
            producers.push(tx);
            consumers.push(rx);
        }
    }
    let (merge_txs, merge_rx) = {
        let _mem = MemScope::enter(Tag::Merge);
        mpsc::<ShardResult>(threads, threads)
    };

    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut packet_hash = FNV_OFFSET;
    let mut scratch: Vec<u8> = Vec::new();
    let mut io_err: Option<io::Error> = None;
    let stop = std::cell::Cell::new(false);
    let mut injector = {
        let _mem = MemScope::enter(Tag::Mux);
        opts.faults.map(FaultInjector::new)
    };
    if let Some(inj) = injector.as_mut() {
        inj.set_tracer(&tracer);
    }

    let (inj_stats, results) = std::thread::scope(|s| {
        let world_ref = &world;
        let opts_ref = &opts;
        let rec_ref = &rec;
        let tracer_ref = &tracer;
        let handles: Vec<_> = consumers
            .into_iter()
            .zip(merge_txs)
            .enumerate()
            .map(|(i, (mut rx, mut mtx))| {
                s.spawn(move || {
                    {
                        let _mem = MemScope::enter(Tag::Trace);
                        tracer_ref.set_track("ah_pipeline_shard_worker", i as u64 + 1);
                    }
                    let mut v = Vantage::build(world_ref, opts_ref, rec_ref, tracer_ref);
                    let tagged_run = ah_mem::accounting_enabled();
                    while let Some(pkt) = rx.pop_wait() {
                        let journey = tracer_ref.journey_id(pkt.src.to_u32());
                        let _pop = (journey != 0)
                            .then(|| tracer_ref.journey_span("ah_pipeline_shard_consume", journey));
                        v.consume_dyn(tagged_run, &pkt);
                    }
                    let result = {
                        let _mem = MemScope::enter(Tag::Merge);
                        ShardResult {
                            out: Box::new(v.into_shard_out()),
                            injector: None,
                            delivered: 0,
                        }
                    };
                    mtx.push(result);
                    mtx.close();
                })
            })
            .collect();

        {
            let exporter = &mut tel.exporter;
            let mem_pulse = &mut tel.mem;
            let writer = &mut writer;
            let io_err = &mut io_err;
            let stop_ref = &stop;
            let mut consume = |pkt: &PacketMeta| {
                if stop_ref.get() || io_err.is_some() {
                    return;
                }
                delivered += 1;
                {
                    let _mem = MemScope::enter(Tag::Wal);
                    scratch.clear();
                    WalRecord::Packet(*pkt).encode_payload(&mut scratch);
                }
                packet_hash = fnv1a_fold(packet_hash, &scratch);
                let journey = tracer.journey_id(pkt.src.to_u32());
                let _route = (journey != 0)
                    .then(|| tracer.journey_span("ah_pipeline_dispatch_route", journey));
                if let Err(e) = writer.append_payload(&scratch) {
                    *io_err = Some(e);
                    stop_ref.set(true);
                    return;
                }
                if journey != 0 {
                    tracer.journey_instant("ah_pipeline_wal_append", journey);
                }
                m_packets.inc();
                m_bytes.add(u64::from(pkt.wire_len));
                producers[shard_of(pkt.src, threads)].push(*pkt);
                if let Some(ex) = exporter.as_mut() {
                    ex.maybe_export(delivered);
                }
                if let Some(mp) = mem_pulse.as_mut() {
                    mp.tick(delivered, &rec, &tracer);
                }
                if wal.crash_after == Some(delivered) {
                    writer.crash_with_torn_tail();
                }
                if wal.suspend_after == Some(delivered) {
                    stop_ref.set(true);
                }
            };
            {
                let _mem = MemScope::enter(Tag::Trace);
                tracer.set_track("ah_pipeline_dispatch_main", 0);
            }
            let _drive = tracer.span("ah_pipeline_mux_drive");
            while !stop.get() {
                let Some(pkt) = sc.mux.next_packet() else { break };
                generated += 1;
                match injector.as_mut() {
                    Some(inj) => inj.apply(&pkt, &mut consume),
                    None => consume(&pkt),
                }
            }
            if !stop.get() {
                if let Some(inj) = injector.as_mut() {
                    inj.flush(&mut consume);
                }
            }
        }
        for p in producers.into_iter() {
            p.close();
        }
        (injector.as_ref().map(|i| i.stats()), collect_shards(&tracer, merge_rx, handles))
    });
    if let Some(e) = io_err {
        return Err(e);
    }
    writer.commit()?;
    if stop.get() {
        return Ok(WalOutcome::Suspended { delivered, durable_seq: writer.durable_seq() });
    }
    writer.seal(RunSeal { generated, delivered, packet_hash, injector: inj_stats })?;
    let shards: Vec<ShardOut> = results.into_iter().map(|r| *r.out).collect();
    let out = finalize_run(world, days, generated, delivered, inj_stats, shards, &opts, tel);
    Ok(WalOutcome::Completed(Box::new(out)))
}

// --- Output fingerprinting ---------------------------------------------

/// Incremental FNV-1a over the canonical byte rendering of a run output.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }
}

impl RunOutput {
    /// A content fingerprint over every externally meaningful field —
    /// detection report, capture summary, daily rollups, flow datasets,
    /// honeypot entries, and the health ledgers.
    ///
    /// Two runs with equal fingerprints produced bitwise-identical
    /// results; the determinism suite holds `run` and [`run_parallel`] to
    /// exactly this standard. Hash-ordered containers are folded in
    /// sorted order so the fingerprint is itself deterministic.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.generated_packets);
        h.u64(self.days);

        h.u64(self.capture.total_packets);
        h.u64(self.capture.total_bytes);
        h.u64(self.capture.scan_packets);
        h.u64(self.capture.non_scan_packets);
        h.u64(self.capture.unique_sources);
        h.u64(self.capture.unique_dsts);

        for (day, s) in &self.daily {
            h.u64(*day);
            h.u64(s.scan_packets);
            h.u64(s.total_packets);
            h.u64(s.unique_sources);
        }

        h.u64(self.report.d2_threshold);
        h.u64(self.report.d3_threshold);
        for r in self.report.records() {
            h.u64(u64::from(r.src.to_u32()));
            h.u64(u64::from(r.dst_port));
            h.u64(u64::from(class_rank(r.class)));
            h.u64(u64::from(r.start_day));
            h.u64(u64::from(r.end_day));
            h.u64(u64::from(r.packets));
            h.u64(r.bytes);
            h.u64(u64::from(r.unique_dsts));
            h.u64(u64::from(r.zmap));
            h.u64(u64::from(r.masscan));
            h.u64(u64::from(r.mirai));
        }
        for def in Definition::ALL {
            let mut yearly: Vec<u32> =
                self.report.hitters(def).iter().map(|ip| ip.to_u32()).collect();
            yearly.sort_unstable();
            h.u64(yearly.len() as u64);
            for ip in yearly {
                h.u64(u64::from(ip));
            }
            for day in self.report.days(def) {
                h.u64(day);
                for set in
                    [self.report.daily_hitters(def, day), self.report.active_hitters(def, day)]
                {
                    let mut ips: Vec<u32> =
                        set.map(|s| s.iter().map(|ip| ip.to_u32()).collect()).unwrap_or_default();
                    ips.sort_unstable();
                    h.u64(ips.len() as u64);
                    for ip in ips {
                        h.u64(u64::from(ip));
                    }
                }
                h.u64(self.report.ah_packets(def, day));
            }
        }
        for (day, n) in &self.report.day_all_sources {
            h.u64(*day);
            h.u64(*n);
        }
        for (day, n) in &self.report.day_all_packets {
            h.u64(*day);
            h.u64(*n);
        }

        for flows in [self.merit_flows.as_ref(), self.cu_flows.as_ref()].into_iter().flatten() {
            h.u64(flows.sampling_rate);
            h.u64(flows.records.len() as u64);
            for r in &flows.records {
                h.u64(u64::from(r.key.src.to_u32()));
                h.u64(u64::from(r.key.dst.to_u32()));
                h.u64(u64::from(r.key.src_port));
                h.u64(u64::from(r.key.dst_port));
                h.u64(u64::from(r.key.protocol));
                h.u64(u64::from(r.router));
                h.u64(match r.direction {
                    ah_flow::router::Direction::Ingress => 0,
                    ah_flow::router::Direction::Egress => 1,
                });
                h.u64(r.first.0);
                h.u64(r.last.0);
                h.u64(r.packets);
                h.u64(r.bytes);
                h.u64(u64::from(r.tcp_flags));
            }
            let mut truth: Vec<_> =
                flows.router_days.iter().map(|((r, d), c)| (*r, *d, c.packets, c.bytes)).collect();
            truth.sort_unstable();
            for (r, d, p, b) in truth {
                h.u64(u64::from(r));
                h.u64(d);
                h.u64(p);
                h.u64(b);
            }
        }

        if let Some(entries) = self.gn_entries.as_ref() {
            let mut ips: Vec<u32> = entries.keys().map(|ip| ip.to_u32()).collect();
            ips.sort_unstable();
            h.u64(ips.len() as u64);
            for ip in ips {
                let e = &entries[&Ipv4Addr4(ip)];
                h.u64(u64::from(ip));
                h.u64(match e.classification {
                    ah_intel::greynoise::GnClassification::Benign => 0,
                    ah_intel::greynoise::GnClassification::Malicious => 1,
                    ah_intel::greynoise::GnClassification::Unknown => 2,
                });
                for tag in &e.tags {
                    h.bytes(tag.as_bytes());
                }
                h.u64(e.first_seen.0);
                h.u64(e.last_seen.0);
                h.u64(e.packets);
            }
        }

        for st in &self.health.stages {
            h.bytes(st.stage.as_bytes());
            h.u64(st.received);
            h.u64(st.accepted);
            h.u64(st.repaired);
            h.u64(st.quarantined);
            for (cat, n) in &st.discarded {
                h.bytes(cat.as_bytes());
                h.u64(*n);
            }
        }
        h.0
    }
}

/// Output of a two-phase tap run (Figures 1 and 2).
pub struct TapRun {
    /// The synthetic internet the scenario ran over.
    pub world: World,
    /// Detection output of the first pass.
    pub report: AhReport,
    /// The hitter list joined on the taps.
    pub ah_list: HashSet<Ipv4Addr4>,
    /// Per-second series at the Merit monitoring station (one core
    /// router's mirrored stream, like the paper's setup).
    pub merit_tap: TapSeries,
    /// Per-second series of all CU border traffic.
    pub cu_tap: TapSeries,
    /// Span of the tap phase in days.
    pub tap_days: u64,
}

/// Two-phase tap experiment: detect on pass 1 (day 0), tap on pass 2
/// (days 1..). `tap_router` selects which Merit router is mirrored
/// (paper: one of the three core routers).
pub fn run_taps(cfg: ScenarioConfig, tap_router: RouterId, def: Definition) -> TapRun {
    let days = cfg.days;
    assert!(days >= 2, "tap runs need a detection day plus tap days");
    let rebuild = cfg.clone();

    // Pass 1: darknet detection only.
    let pass1 = run(cfg, RunOptions::darknet_only());
    // The paper derives its list from the day before the tap window.
    let mut ah_list: HashSet<Ipv4Addr4> =
        pass1.report.active_hitters(def, 0).cloned().unwrap_or_default();
    if ah_list.is_empty() {
        // Fall back to the whole-run list (tiny test scenarios).
        ah_list = pass1.report.hitters(def).clone();
    }

    // Pass 2: identical traffic, measured at the taps from day 1 on.
    let mut sc = Scenario::build(rebuild);
    let world = {
        let _mem = MemScope::enter(Tag::Mux);
        sc.world.clone()
    };
    let mut merit = merit_isp(&world, 1);
    let mut cu = cu_isp(&world, 1);
    let tap_start = Ts::from_days(1);
    let mut merit_tap = TapAnalyzer::new(ah_list.clone(), tap_start);
    let mut cu_tap = TapAnalyzer::new(ah_list.clone(), tap_start);
    sc.mux.drive(|pkt| {
        if pkt.ts < tap_start {
            return;
        }
        if let ah_flow::router::Disposition::Border(r, _) = merit.observe(pkt) {
            if r == tap_router {
                merit_tap.observe(pkt);
            }
        }
        if let ah_flow::router::Disposition::Border(..) = cu.observe(pkt) {
            cu_tap.observe(pkt);
        }
    });

    TapRun {
        world,
        report: pass1.report,
        ah_list,
        merit_tap: merit_tap.series(),
        cu_tap: cu_tap.series(),
        tap_days: days - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn darknet_only_run_detects_hitters() {
        let out = run(ScenarioConfig::tiny(2, 11), RunOptions::darknet_only());
        assert!(out.generated_packets > 10_000);
        assert!(out.capture.total_packets > 1000);
        assert!(out.capture.scan_packets > 0);
        assert!(out.merit_flows.is_none());
        assert!(!out.report.hitters(Definition::AddressDispersion).is_empty());
        assert_eq!(out.daily.len() as u64, out.days);
    }

    #[test]
    fn full_run_produces_all_vantage_points() {
        let out = run(ScenarioConfig::tiny(2, 12), RunOptions::full());
        let merit = out.merit_flows.as_ref().unwrap();
        assert!(!merit.records.is_empty());
        assert!(!merit.router_days.is_empty());
        assert!(out.cu_flows.is_some());
        let gn = out.gn_entries.as_ref().unwrap();
        assert!(!gn.is_empty(), "scanners should hit sensors");
    }

    #[test]
    fn taps_have_hitter_traffic() {
        let tap = run_taps(ScenarioConfig::tiny(3, 13), 1, Definition::AddressDispersion);
        assert!(!tap.ah_list.is_empty());
        assert!(tap.merit_tap.total_packets() > 0);
        assert!(tap.cu_tap.total_packets() > 0);
        assert!(tap.merit_tap.ah_packets() > 0, "hitters must appear at the tap");
    }

    #[test]
    fn clean_run_health_ledger_balances() {
        let out = run(ScenarioConfig::tiny(1, 15), RunOptions::full());
        assert!(out.health.conserves(), "violations: {:?}", out.health.violations());
        // No injector stage on a clean run; every vantage point reports.
        assert!(out.health.stage("faults.injector").is_none());
        for name in
            ["telescope.capture", "telescope.events", "flow.merit", "flow.cu", "intel.greynoise"]
        {
            let st = out.health.stage(name).unwrap_or_else(|| panic!("missing stage {name}"));
            assert!(st.received > 0, "{name} saw no input");
        }
        // The capture ledger accounts for every generated packet.
        let cap = out.health.stage("telescope.capture").unwrap();
        assert_eq!(cap.received, out.generated_packets);
        // v9 loopback decodes every exported record.
        let v9 = out.health.stage("flow.v9_export").unwrap();
        assert_eq!(v9.accepted, v9.received);
        assert_eq!(v9.discarded_total(), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(ScenarioConfig::tiny(1, 14), RunOptions::darknet_only());
        let b = run(ScenarioConfig::tiny(1, 14), RunOptions::darknet_only());
        assert_eq!(a.generated_packets, b.generated_packets);
        assert_eq!(a.capture.total_packets, b.capture.total_packets);
        assert_eq!(
            a.report.hitters(Definition::AddressDispersion),
            b.report.hitters(Definition::AddressDispersion)
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn parallel_matches_serial_smoke() {
        let a = run(ScenarioConfig::tiny(1, 16), RunOptions::full());
        let b = run_parallel(ScenarioConfig::tiny(1, 16), RunOptions::full(), 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
