//! Property-based invariants for the SPSC ring buffer.
//!
//! The parallel pipeline's determinism proof leans on exactly two ring
//! properties: every pushed item is popped exactly once (completeness),
//! and items come out in push order (FIFO) — regardless of capacity,
//! batch-flush positions, or how pushes and pops interleave.

use ah_simnet::ring::ring;
use proptest::prelude::*;

proptest! {
    /// Single-threaded interleaving: an arbitrary schedule of pushes,
    /// pops and flushes never loses, duplicates or reorders items.
    #[test]
    fn interleaved_ops_preserve_fifo_and_completeness(
        capacity in 1usize..64,
        ops in proptest::collection::vec(0u8..3, 1..400),
    ) {
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let mut next = 0u64;
        let mut expected = 0u64;
        for op in ops {
            match op {
                0 => {
                    if tx.try_push(next).is_ok() {
                        next += 1;
                    }
                }
                1 => {
                    if let Some(v) = rx.pop() {
                        prop_assert_eq!(v, expected, "FIFO order violated");
                        expected += 1;
                    }
                }
                _ => tx.flush(),
            }
        }
        // Drain: after a final flush everything pushed must come out.
        tx.flush();
        while let Some(v) = rx.pop() {
            prop_assert_eq!(v, expected);
            expected += 1;
        }
        prop_assert_eq!(expected, next, "items lost in the ring");
    }

    /// Cross-thread: for any capacity and item count, a producer thread
    /// pushing 0..n and closing yields exactly 0..n at the consumer.
    #[test]
    fn cross_thread_stream_is_exact(
        capacity in 1usize..32,
        n in 0usize..2000,
    ) {
        let (mut tx, mut rx) = ring::<usize>(capacity);
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.push(i);
            }
            tx.close();
        });
        let mut seen = 0usize;
        while let Some(v) = rx.pop_wait() {
            prop_assert_eq!(v, seen, "FIFO order violated across threads");
            seen += 1;
        }
        producer.join().expect("producer thread");
        prop_assert_eq!(seen, n, "items lost or duplicated across threads");
    }
}
