//! Packet-substrate microbenchmarks: header parse/emit, pcap I/O,
//! prefix-set membership, fingerprint classification.

use ah_net::fingerprint::classify;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::pcap::{PcapReader, PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_RAW};
use ah_net::prefix::{Prefix, PrefixSet};
use ah_net::time::Ts;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn sample_packets(n: u32) -> Vec<PacketMeta> {
    (0..n)
        .map(|i| {
            let mut p = PacketMeta::tcp_syn(
                Ts::from_micros(u64::from(i)),
                Ipv4Addr4(0x0a00_0000 + i),
                Ipv4Addr4(0x1400_0000 + (i * 7919) % 65536),
                40_000,
                6379,
            );
            p.ip_id = (i % 65_536) as u16;
            p
        })
        .collect()
}

fn bench_parse_emit(c: &mut Criterion) {
    let pkts = sample_packets(1024);
    let wires: Vec<Vec<u8>> = pkts.iter().map(PacketMeta::to_bytes).collect();
    let mut g = c.benchmark_group("packet");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("emit_1k_tcp_syn", |b| {
        b.iter(|| {
            for p in &pkts {
                black_box(p.to_bytes());
            }
        })
    });
    g.bench_function("parse_1k_tcp_syn", |b| {
        b.iter(|| {
            for w in &wires {
                black_box(PacketMeta::parse_ip(w, Ts::ZERO).unwrap());
            }
        })
    });
    g.bench_function("classify_1k", |b| {
        b.iter(|| {
            for p in &pkts {
                black_box(classify(p));
            }
        })
    });
    g.finish();
}

fn bench_pcap(c: &mut Criterion) {
    let pkts = sample_packets(1024);
    let mut file = Vec::new();
    {
        let mut w = PcapWriter::new(&mut file, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        for p in &pkts {
            w.write_packet(p.ts, &p.to_bytes()).unwrap();
        }
        w.finish().unwrap();
    }
    let mut g = c.benchmark_group("pcap");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("write_1k", |b| {
        let wires: Vec<Vec<u8>> = pkts.iter().map(PacketMeta::to_bytes).collect();
        b.iter(|| {
            let mut buf = Vec::with_capacity(file.len());
            let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
            for (p, wire) in pkts.iter().zip(&wires) {
                w.write_packet(p.ts, wire).unwrap();
            }
            black_box(w.finish().unwrap());
        })
    });
    g.bench_function("read_1k", |b| {
        b.iter(|| {
            let r = PcapReader::new(&file[..]).unwrap();
            black_box(r.records().count())
        })
    });
    g.finish();
}

fn bench_prefixes(c: &mut Criterion) {
    let prefixes: Vec<Prefix> = (0..256u32)
        .map(|i| Prefix::new(Ipv4Addr4(i << 24 | (i * 37) << 12), 20).unwrap())
        .collect();
    let set = PrefixSet::from_prefixes(prefixes);
    let probes: Vec<Ipv4Addr4> =
        (0..4096u32).map(|i| Ipv4Addr4(i.wrapping_mul(2_654_435_761))).collect();
    let mut g = c.benchmark_group("prefix");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("set_contains_4k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for p in &probes {
                if set.contains(*p) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parse_emit, bench_pcap, bench_prefixes);
criterion_main!(benches);
