//! Detection benchmarks: detector ingest + finalize, ECDF construction.

use ah_core::detector::{Detector, DetectorConfig};
use ah_core::ecdf::Ecdf;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::ScanClass;
use ah_net::time::{Dur, Ts};
use ah_telescope::event::{DarknetEvent, EventKey, ToolCounts};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn synthetic_events(n: u32) -> Vec<DarknetEvent> {
    (0..n)
        .map(|i| DarknetEvent {
            key: EventKey {
                src: Ipv4Addr4(0x6500_0000 + i % 5000),
                dst_port: (i % 1024) as u16,
                class: ScanClass::TcpSyn,
            },
            start: Ts::from_secs(u64::from(i)),
            end: Ts::from_secs(u64::from(i) + 60),
            packets: u64::from(1 + i % 997),
            bytes: 40 * u64::from(1 + i % 997),
            unique_dsts: 1 + (i * 31) % 2000,
            dark_size: 16_384,
            tools: ToolCounts::default(),
        })
        .collect()
}

fn bench_detector(c: &mut Criterion) {
    let events = synthetic_events(50_000);
    let mut g = c.benchmark_group("detector");
    g.sample_size(20);
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("ingest_finalize_50k_events", |b| {
        b.iter(|| {
            let mut d = Detector::new(DetectorConfig::new(16_384));
            d.ingest_all(&events);
            black_box(d.finalize().hitters(ah_core::defs::Definition::AddressDispersion).len())
        })
    });
    g.finish();
}

fn bench_ecdf(c: &mut Criterion) {
    let samples: Vec<u64> = (0..1_000_000u64).map(|i| (i * 2_654_435_761) % 100_000).collect();
    let mut g = c.benchmark_group("ecdf");
    g.sample_size(20);
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("build_1m_and_threshold", |b| {
        b.iter(|| {
            let e = Ecdf::from_samples(samples.clone());
            black_box(e.top_alpha_threshold(1e-4))
        })
    });
    let _ = Dur::from_secs(1); // keep the time import exercised
    g.finish();
}

criterion_group!(benches, bench_detector, bench_ecdf);
criterion_main!(benches);
