//! Reverse DNS: PTR records and keyword matching.
//!
//! The paper's second Acknowledged-Scanner match stage compiles 48
//! keywords from the rDNS names of known research scanners ("shodan",
//! "censys-scanner", ...) and flags any hitter whose PTR record contains
//! one.

use ah_net::ipv4::Ipv4Addr4;
use std::collections::HashMap;

/// A PTR-record table.
#[derive(Debug, Clone, Default)]
pub struct RdnsTable {
    records: HashMap<Ipv4Addr4, String>,
}

impl RdnsTable {
    /// An empty table.
    pub fn new() -> RdnsTable {
        RdnsTable::default()
    }

    /// Set the PTR record for an address (lowercased on insert, as DNS
    /// names are case-insensitive).
    pub fn insert(&mut self, addr: Ipv4Addr4, name: &str) {
        self.records.insert(addr, name.to_ascii_lowercase());
    }

    /// Look up the PTR record.
    pub fn lookup(&self, addr: Ipv4Addr4) -> Option<&str> {
        self.records.get(&addr).map(String::as_str)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Case-insensitive keyword scan over a domain name.
///
/// Keywords are matched as substrings, like the paper's grep over PTR
/// names; callers pre-lowercase their keyword lists.
pub fn matches_keyword<'k>(name: &str, keywords: &'k [String]) -> Option<&'k str> {
    let lower = name.to_ascii_lowercase();
    keywords.iter().find(|k| !k.is_empty() && lower.contains(k.as_str())).map(String::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup() {
        let mut t = RdnsTable::new();
        let a = Ipv4Addr4::new(1, 2, 3, 4);
        t.insert(a, "Scanner-07.Research.EXAMPLE.edu");
        assert_eq!(t.lookup(a), Some("scanner-07.research.example.edu"));
        assert_eq!(t.lookup(Ipv4Addr4::new(4, 3, 2, 1)), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn keyword_match_is_substring_and_case_insensitive() {
        let kws = vec!["censys".to_string(), "shadowserver".to_string()];
        assert_eq!(matches_keyword("scan-3.CENSYS.io", &kws), Some("censys"));
        assert_eq!(matches_keyword("probe.shadowserver.org", &kws), Some("shadowserver"));
        assert_eq!(matches_keyword("mail.example.com", &kws), None);
    }

    #[test]
    fn empty_keywords_never_match() {
        let kws = vec![String::new()];
        assert_eq!(matches_keyword("anything.example", &kws), None);
        assert_eq!(matches_keyword("anything.example", &[]), None);
    }
}
