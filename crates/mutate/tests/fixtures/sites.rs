//! Fixture: expected mutation sites. A slash-slash-tilde marker names
//! the distinct operators that must enumerate on its line; a line with
//! no marker must enumerate none. Driven by `tests/ops_fixture.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn orderings(c: &AtomicUsize) -> usize {
    c.store(1, Ordering::Release); //~ ord-relax
    c.load(Ordering::Acquire) //~ ord-relax
}

pub fn relaxed_stays(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed)
}

pub fn thresholds(a: u64, dark: u64) -> bool {
    a >= 10 && dark < 20 //~ cmp-swap lit-bump logic-swap
}

pub fn equality(a: u64, b: u64) -> bool {
    a == b || a != 0 //~ cmp-swap lit-bump logic-swap
}

pub fn arithmetic(a: u64, b: u64) -> u64 {
    a * b + a / 2 - 1 //~ arith-swap
}

pub fn compound(mut acc: u64, x: u64) -> u64 {
    acc += x; //~ arith-swap
    acc
}

pub fn saturation(a: u64) -> u64 {
    a.saturating_add(1).wrapping_mul(2) //~ sat-wrap
}

pub fn generics(v: Vec<u32>) -> Option<u32> {
    v.into_iter().next()
}

pub fn turbofish(v: &[u64]) -> usize {
    v.iter().copied().collect::<Vec<u64>>().len()
}

pub fn references(a: &u64, b: &mut u64) -> u64 {
    *b = *a;
    *a
}

pub fn strings() -> &'static str {
    // a >= b && c < d inside a comment is not a site
    "x < y && z == w"
}

#[cfg(test)]
mod tests {
    #[test]
    fn juicy_ops_in_test_code_are_skipped() {
        assert!(1 < 2 && 3 >= 3 || 4 != 5);
        assert_eq!(2 + 2, 2 * 2);
    }
}
