//! Trace exporters: Chrome trace-event JSON and folded-stack
//! flamegraph text.
//!
//! Serialization is hand-rolled, exactly like ah-obs: the schema is
//! small, names are constrained by [`crate::valid_trace_name`], and
//! keeping ah-trace dependency-free means the pipeline never links a
//! serde tree for its telemetry.
//!
//! The Chrome export targets the trace-event format's JSON Object
//! Format (`{"traceEvents":[...]}`), loadable in Perfetto and
//! `chrome://tracing`: `B`/`E` duration events per track (one track per
//! registered thread), `i` instants, and `s`/`t`/`f` flow events
//! linking every sampled packet journey across tracks. The folded
//! export emits `track;outer;inner <self-time-µs>` lines, the input
//! format of Brendan Gregg's `flamegraph.pl` — the no-`perf` fallback
//! `scripts/flamegraph.sh` uses.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::buffer::EventKind;

/// One decoded event with its name resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin/end/instant.
    pub kind: EventKind,
    /// Span name (`ah_<crate>_<subsystem>_<name>`).
    pub name: String,
    /// Wall-clock nanoseconds since the tracer epoch.
    pub ts_ns: u64,
    /// Deterministic logical sequence (index in the track's buffer).
    pub seq: u64,
    /// Journey id (`0` = none; otherwise `src + 1`).
    pub journey: u64,
}

/// One thread's track: label plus its events in emission order.
#[derive(Clone, Debug, Default)]
pub struct TrackSnapshot {
    /// Display label (`<scheme-name>/<index>`).
    pub label: String,
    /// Track id (registration order; the Chrome `tid`).
    pub tid: u32,
    /// Events in buffer order (timestamps non-decreasing).
    pub events: Vec<TraceEvent>,
}

/// A full trace snapshot across all tracks.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// All registered tracks in `tid` order.
    pub tracks: Vec<TrackSnapshot>,
    /// Events dropped on buffer overflow (trace is incomplete if > 0).
    pub dropped: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → the trace-event `ts` field (microseconds, fractional
/// part kept so distinct events never collapse to one timestamp).
fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000)
}

fn dotted(src: u32) -> String {
    format!("{}.{}.{}.{}", src >> 24, (src >> 16) & 0xff, (src >> 8) & 0xff, src & 0xff)
}

/// Serialize a snapshot as Chrome trace-event JSON (see module docs).
///
/// Unbalanced spans (a begin whose guard never dropped before the
/// snapshot) are closed synthetically at the track's last timestamp so
/// the output always validates; the count of synthesized ends is
/// recorded in the `ah_trace_export_meta` instant's args.
pub fn to_chrome_trace(snap: &TraceSnapshot) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"aggressive-scanners\"}}"
            .to_string(),
    );
    let mut synthesized = 0u64;
    // (ts_ns, tid, journey) for every journey-tagged begin/instant, to
    // be linked with flow events afterwards.
    let mut journey_points: BTreeMap<u64, Vec<(u64, u32, u64)>> = BTreeMap::new();
    for track in &snap.tracks {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.tid,
            json_escape(&track.label)
        ));
        events.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"sort_index\":{}}}}}",
            track.tid, track.tid
        ));
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0u64;
        for ev in &track.events {
            last_ts = last_ts.max(ev.ts_ns);
            let args = if ev.journey != 0 {
                format!(
                    ",\"args\":{{\"seq\":{},\"journey\":{},\"src\":\"{}\"}}",
                    ev.seq,
                    ev.journey,
                    dotted((ev.journey - 1) as u32)
                )
            } else {
                format!(",\"args\":{{\"seq\":{}}}", ev.seq)
            };
            match ev.kind {
                EventKind::Begin => {
                    stack.push(&ev.name);
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{},\
                         \"pid\":1,\"tid\":{}{}}}",
                        json_escape(&ev.name),
                        ts_us(ev.ts_ns),
                        track.tid,
                        args
                    ));
                    if ev.journey != 0 {
                        journey_points
                            .entry(ev.journey)
                            .or_default()
                            .push((ev.ts_ns, track.tid, ev.seq));
                    }
                }
                EventKind::End => {
                    stack.pop();
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{},\
                         \"pid\":1,\"tid\":{}{}}}",
                        json_escape(&ev.name),
                        ts_us(ev.ts_ns),
                        track.tid,
                        args
                    ));
                }
                EventKind::Instant => {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{},\"pid\":1,\"tid\":{}{}}}",
                        json_escape(&ev.name),
                        ts_us(ev.ts_ns),
                        track.tid,
                        args
                    ));
                    if ev.journey != 0 {
                        journey_points
                            .entry(ev.journey)
                            .or_default()
                            .push((ev.ts_ns, track.tid, ev.seq));
                    }
                }
            }
        }
        // Close any still-open spans so B/E balance per track.
        while let Some(name) = stack.pop() {
            synthesized += 1;
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{},\
                 \"pid\":1,\"tid\":{}}}",
                json_escape(name),
                ts_us(last_ts),
                track.tid
            ));
        }
    }
    // Flow arrows: one s → t… → f chain per journey with ≥ 2 points.
    for (journey, mut points) in journey_points {
        if points.len() < 2 {
            continue;
        }
        points.sort();
        let last = points.len() - 1;
        for (i, (ts_ns, tid, _)) in points.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i == last {
                "f"
            } else {
                "t"
            };
            let bp = if ph == "s" { "" } else { ",\"bp\":\"e\"" };
            events.push(format!(
                "{{\"name\":\"ah_trace_journey_flow\",\"cat\":\"journey\",\"ph\":\"{}\",\
                 \"id\":{},\"ts\":{},\"pid\":1,\"tid\":{}{}}}",
                ph,
                journey,
                ts_us(*ts_ns),
                tid,
                bp
            ));
        }
    }
    events.push(format!(
        "{{\"name\":\"ah_trace_export_meta\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"g\",\
         \"ts\":0.000,\"pid\":1,\"tid\":0,\
         \"args\":{{\"dropped\":{},\"synthesized_ends\":{}}}}}",
        snap.dropped, synthesized
    ));
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

/// Serialize a snapshot as folded stacks (`flamegraph.pl` input):
/// one `track;outer;…;leaf <self-time-µs>` line per unique stack,
/// sorted, self time attributed exclusively (child time subtracted).
pub fn to_folded_stacks(snap: &TraceSnapshot) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for track in &snap.tracks {
        let label = track.label.replace(';', "_");
        // (name, begin_ts, child_ns)
        let mut stack: Vec<(String, u64, u64)> = Vec::new();
        let mut last_ts = 0u64;
        let mut close = |stack: &mut Vec<(String, u64, u64)>, end_ts: u64| {
            let Some((name, begin, child_ns)) = stack.pop() else { return };
            let dur = end_ts.saturating_sub(begin);
            let self_ns = dur.saturating_sub(child_ns);
            if let Some((_, _, parent_child)) = stack.last_mut() {
                *parent_child += dur;
            }
            let mut key = label.clone();
            for (frame, _, _) in stack.iter() {
                key.push(';');
                key.push_str(frame);
            }
            key.push(';');
            key.push_str(&name);
            // Self time in µs, floored at 1 so fast spans still render.
            *folded.entry(key).or_insert(0) += (self_ns / 1000).max(1);
        };
        for ev in &track.events {
            last_ts = last_ts.max(ev.ts_ns);
            match ev.kind {
                EventKind::Begin => stack.push((ev.name.clone(), ev.ts_ns, 0)),
                EventKind::End => close(&mut stack, ev.ts_ns),
                EventKind::Instant => {}
            }
        }
        while !stack.is_empty() {
            close(&mut stack, last_ts);
        }
    }
    let mut out = String::new();
    for (key, us) in folded {
        out.push_str(&format!("{key} {us}\n"));
    }
    out
}

/// Write both export formats: Chrome JSON at `json_path` and folded
/// stacks alongside it with the extension replaced by `.folded`.
/// Returns the folded path.
pub fn write_artifacts(snap: &TraceSnapshot, json_path: &Path) -> io::Result<PathBuf> {
    std::fs::write(json_path, to_chrome_trace(snap))?;
    let folded_path = json_path.with_extension("folded");
    std::fs::write(&folded_path, to_folded_stacks(snap))?;
    Ok(folded_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, Tracer};

    fn sample_snapshot() -> TraceSnapshot {
        let tr = Tracer::new(TraceConfig { seed: 3, sample_one_in: 1, buf_capacity: 128 });
        tr.set_track("ah_test_track_main", 0);
        let j = tr.journey_id(10);
        {
            let _route = tr.journey_span("ah_test_stage_route", j);
            let _consume = tr.journey_span("ah_test_stage_consume", j);
            tr.instant("ah_test_mark_done");
        }
        tr.journey_instant("ah_test_stage_detect", j);
        tr.snapshot()
    }

    #[test]
    fn chrome_trace_validates_and_links_journeys() {
        let json = to_chrome_trace(&sample_snapshot());
        let stats = crate::check::validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.tracks, 1);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.flow_ids.len(), 1);
        assert!(stats.flow_ids.contains(&11)); // src 10 → journey 11
        assert!(stats.names.contains("ah_test_stage_route"));
        assert!(stats.names.contains("ah_test_stage_detect"));
    }

    #[test]
    fn unbalanced_span_gets_synthesized_end() {
        let tr = Tracer::new(TraceConfig { seed: 0, sample_one_in: 0, buf_capacity: 16 });
        let guard = tr.span("ah_test_span_open");
        let json = to_chrome_trace(&tr.snapshot());
        drop(guard);
        let stats = crate::check::validate_chrome_trace(&json).expect("synthesized end balances");
        assert_eq!(stats.spans, 1);
    }

    #[test]
    fn folded_stacks_attribute_self_time_exclusively() {
        let snap = TraceSnapshot {
            tracks: vec![TrackSnapshot {
                label: "ah_test_track_main/0".to_string(),
                tid: 0,
                events: vec![
                    TraceEvent {
                        kind: EventKind::Begin,
                        name: "ah_test_span_outer".to_string(),
                        ts_ns: 0,
                        seq: 0,
                        journey: 0,
                    },
                    TraceEvent {
                        kind: EventKind::Begin,
                        name: "ah_test_span_inner".to_string(),
                        ts_ns: 10_000,
                        seq: 1,
                        journey: 0,
                    },
                    TraceEvent {
                        kind: EventKind::End,
                        name: "ah_test_span_inner".to_string(),
                        ts_ns: 40_000,
                        seq: 2,
                        journey: 0,
                    },
                    TraceEvent {
                        kind: EventKind::End,
                        name: "ah_test_span_outer".to_string(),
                        ts_ns: 50_000,
                        seq: 3,
                        journey: 0,
                    },
                ],
            }],
            dropped: 0,
        };
        let folded = to_folded_stacks(&snap);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "ah_test_track_main/0;ah_test_span_outer 20",
                "ah_test_track_main/0;ah_test_span_outer;ah_test_span_inner 30",
            ]
        );
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = TraceSnapshot::default();
        let json = to_chrome_trace(&snap);
        let stats = crate::check::validate_chrome_trace(&json).expect("empty trace is valid");
        assert_eq!(stats.tracks, 0);
        assert_eq!(stats.spans, 0);
        assert_eq!(to_folded_stacks(&snap), "");
    }
}
