//! Memory-accounting determinism and leak-gate checks.
//!
//! The contract under test (`ARCHITECTURE.md` §13): tagged-allocator
//! accounting is observation-only. Flipping [`ah_mem::set_accounting`]
//! on — every allocation charged to a per-subsystem account via the
//! scope stack — must leave [`RunOutput::fingerprint`] bitwise
//! identical on both engines, clean or faulted, and on the durable
//! (WAL) run/suspend-resume/replay paths. On top of that, the
//! run-scoped tags (mux, telescope, flow, wal, merge, detectors) must
//! drain back to ~zero live bytes once the run's output is dropped —
//! the leak gate `scripts/ci.sh` enforces on the release binary.
//!
//! Accounting state is process-global, so every test here serializes
//! on one mutex; integration tests are their own binary, which makes
//! that intra-file lock sufficient.

use aggressive_scanners::pipeline::{self, RunOptions, RunOutput, Telemetry, WalOutcome, WalRun};
use aggressive_scanners::simnet::faults::FaultPlan;
use aggressive_scanners::simnet::scenario::ScenarioConfig;
use ah_mem::Tag;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Slack for state that legitimately outlives a run while charged to a
/// run tag (e.g. a span name interned before its owner re-tagged it).
const EPSILON_BYTES: i64 = 16 * 1024;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A panicked test poisons the mutex but leaves accounting usable;
    // keep serializing instead of cascading failures.
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn scenario() -> ScenarioConfig {
    ScenarioConfig::tiny(1, 33)
}

fn opts(faulted: bool) -> RunOptions {
    let o = RunOptions::full();
    if faulted {
        o.with_faults(FaultPlan::uniform(0.01, 33))
    } else {
        o
    }
}

fn run_with(tel: &mut Telemetry, threads: usize, faulted: bool) -> RunOutput {
    if threads <= 1 {
        pipeline::run_with_recorder(scenario(), opts(faulted), tel)
    } else {
        pipeline::run_parallel_with_recorder(scenario(), opts(faulted), threads, tel)
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-mem-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

// --- Determinism --------------------------------------------------------

#[test]
fn accounting_does_not_perturb_output() {
    let _g = lock();
    for (threads, faulted) in [(1, false), (1, true), (8, false), (8, true)] {
        ah_mem::set_accounting(false);
        let baseline = run_with(&mut Telemetry::disabled(), threads, faulted);
        assert!(baseline.mem.is_none(), "accounting off must not attach a memory report");

        ah_mem::set_accounting(true);
        // A tight pulse interval so the periodic refresh path runs many
        // times inside even this tiny scenario.
        let mut tel = Telemetry::disabled().with_mem(64);
        let accounted = run_with(&mut tel, threads, faulted);
        ah_mem::set_accounting(false);

        assert_eq!(
            baseline.fingerprint(),
            accounted.fingerprint(),
            "accounting changed the output at threads={threads} faulted={faulted}"
        );
        let report = accounted.mem.as_ref().expect("accounted run attaches a memory report");
        assert!(report.global.peak_bytes > 0, "global peak not tracked");
        assert!(report.peak_rss_bytes() > 0, "peak RSS not resolved");
        for tag in [Tag::Mux, Tag::Telescope, Tag::Flow, Tag::Detectors] {
            let s = report.tags().find(|(t, _)| *t == tag).expect("tag in report").1;
            assert!(
                s.total_bytes > 0,
                "tag {} never charged at threads={threads} faulted={faulted}",
                tag.name()
            );
        }
    }
}

#[test]
fn accounting_is_invariant_on_durable_paths() {
    let _g = lock();
    ah_mem::set_accounting(false);
    let plain = pipeline::run(scenario(), opts(true)).fingerprint();

    ah_mem::set_accounting(true);
    for threads in [1, 8] {
        // Live durable run == plain run, and its log replays identically.
        let dir = temp_dir(&format!("wal-t{threads}"));
        let mut tel = Telemetry::disabled().with_mem(64);
        let live = pipeline::run_parallel_wal(
            scenario(),
            opts(true),
            threads,
            &WalRun::new(&dir),
            &mut tel,
        )
        .expect("durable run")
        .completed()
        .expect("run completed");
        assert_eq!(live.fingerprint(), plain, "accounted wal live diverged, {threads} threads");
        let wal_report = live.mem.as_ref().expect("durable run attaches a memory report");
        let wal_stats =
            wal_report.tags().find(|(t, _)| *t == Tag::Wal).expect("wal tag in report").1;
        assert!(wal_stats.total_bytes > 0, "wal tag never charged on the durable path");

        let replayed =
            pipeline::replay_wal(scenario(), opts(true), &dir, &mut tel).expect("replay");
        assert_eq!(replayed.fingerprint(), plain, "accounted replay diverged");

        // Suspend mid-stream, then resume to completion == uninterrupted.
        let dir2 = temp_dir(&format!("wal-s{threads}"));
        let cut = live.capture.total_packets.max(8) / 2;
        let wal = WalRun::new(&dir2).suspend_after(cut);
        match pipeline::run_parallel_wal(scenario(), opts(true), threads, &wal, &mut tel) {
            Ok(WalOutcome::Suspended { delivered, .. }) => {
                assert_eq!(delivered, cut, "suspension point honored")
            }
            Ok(WalOutcome::Completed(_)) => panic!("run finished before suspension point"),
            Err(e) => panic!("suspend run failed: {e}"),
        }
        let resumed = pipeline::resume_wal(scenario(), opts(true), &WalRun::new(&dir2), &mut tel)
            .expect("resume")
            .completed()
            .expect("resumed run completed");
        assert_eq!(resumed.fingerprint(), plain, "accounted resumed run diverged");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }
    ah_mem::set_accounting(false);
}

// --- Leak gate ----------------------------------------------------------

#[test]
fn run_scoped_tags_drain_when_output_drops() {
    let _g = lock();
    ah_mem::set_accounting(true);
    // Delta-based: whatever earlier tests left charged (bounded by
    // their own drains) is the baseline, not part of this run.
    let base: Vec<i64> = Tag::RUN_SCOPED.iter().map(|&t| ah_mem::tag_stats(t).live_bytes).collect();

    let out = run_with(&mut Telemetry::disabled().with_mem(64), 8, true);
    let report = out.mem.clone().expect("memory report");
    drop(out);

    ah_mem::set_accounting(false);
    for (i, &tag) in Tag::RUN_SCOPED.iter().enumerate() {
        let now = ah_mem::tag_stats(tag).live_bytes;
        assert!(
            now - base[i] <= EPSILON_BYTES,
            "tag {} leaked {} live bytes after the run's output dropped (was {}, now {now})",
            tag.name(),
            now - base[i],
            base[i],
        );
    }
    // The run itself was real: its peaks dwarf the leak epsilon.
    assert!(
        report.global.peak_bytes > EPSILON_BYTES,
        "global peak {} suspiciously small",
        report.global.peak_bytes
    );
}

#[test]
fn leak_check_helper_agrees_with_drained_state() {
    let _g = lock();
    ah_mem::set_accounting(true);
    let out = run_with(&mut Telemetry::disabled(), 1, false);
    drop(out);
    ah_mem::set_accounting(false);
    // Absolute check with a budget generous enough to cover residue
    // from every earlier test in this binary — its purpose is to pin
    // that leak_check reports per-tag live bytes, not cumulative ones.
    let leaks = ah_mem::leak_check(1 << 20);
    assert!(leaks.is_empty(), "unexpected live residue: {leaks:?}");
}
