//! Property-based tests for the flow substrate.

use ah_flow::cache::FlowCache;
use ah_flow::record::{decode_v5, encode_v5, FlowKey, FlowRecord};
use ah_flow::router::Direction;
use ah_flow::sampler::Sampler;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::{Dur, Ts};
use proptest::prelude::*;

proptest! {
    /// The systematic sampler's estimate is never off by more than one
    /// sampling interval, for any rate, phase and stream length.
    #[test]
    fn sampler_estimate_error_is_bounded(
        rate in 1u64..5000,
        phase in any::<u64>(),
        n in 0u64..100_000,
    ) {
        let mut s = Sampler::new(rate, phase);
        let mut picked = 0u64;
        for _ in 0..n {
            if s.sample() {
                picked += 1;
            }
        }
        let est = s.estimate(picked);
        prop_assert!(est.abs_diff(n) < rate, "rate {} n {} est {}", rate, n, est);
        prop_assert_eq!(s.seen(), n);
        prop_assert_eq!(s.selected(), picked);
    }

    /// The flow cache conserves packets and bytes across arbitrary
    /// interleavings and timeout-driven chops.
    #[test]
    fn cache_conserves_traffic(
        steps in proptest::collection::vec((0u64..60_000, 0u8..6, 0u8..4), 1..400),
    ) {
        let mut cache = FlowCache::new(1);
        let mut t = Ts::ZERO;
        let mut packets_in = 0u64;
        let mut bytes_in = 0u64;
        for (gap_ms, src, port_sel) in steps {
            t += Dur::from_millis(gap_ms);
            let pkt = PacketMeta::tcp_syn(
                t,
                Ipv4Addr4::new(100, 0, 0, src),
                Ipv4Addr4::new(10, 0, 0, 1),
                40_000,
                [22u16, 80, 443, 6379][port_sel as usize],
            );
            packets_in += 1;
            bytes_in += u64::from(pkt.wire_len);
            cache.observe(&pkt, Direction::Ingress);
        }
        let records = cache.flush();
        prop_assert_eq!(records.iter().map(|r| r.packets).sum::<u64>(), packets_in);
        prop_assert_eq!(records.iter().map(|r| r.bytes).sum::<u64>(), bytes_in);
        for r in &records {
            prop_assert!(r.first <= r.last);
            prop_assert!(r.packets >= 1);
        }
    }

    /// NetFlow v5 encode/decode is the identity on arbitrary records
    /// (within the format's field widths).
    #[test]
    fn v5_roundtrip_arbitrary(
        recs in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>(),
             0u32..0x7fff_ffff, 0u32..0x7fff_ffff, any::<u8>(), any::<bool>()),
            0..30,
        ),
    ) {
        let records: Vec<FlowRecord> = recs
            .into_iter()
            .map(|(src, dst, sp, dp, proto, first_ms, dur_ms, flags, ingress)| FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr4(src),
                    dst: Ipv4Addr4(dst),
                    src_port: sp,
                    dst_port: dp,
                    protocol: proto,
                },
                router: 2,
                direction: if ingress { Direction::Ingress } else { Direction::Egress },
                first: Ts::from_millis(u64::from(first_ms)),
                last: Ts::from_millis(u64::from(first_ms) + u64::from(dur_ms % 1000)),
                packets: u64::from(first_ms % 10_000) + 1,
                bytes: u64::from(dur_ms % 1_000_000) + 40,
                tcp_flags: flags,
            })
            .collect();
        let wire = encode_v5(&records, Ts::from_secs(5), 9, 1000);
        let decoded = decode_v5(&wire).unwrap();
        prop_assert_eq!(decoded, records);
    }

    /// Corrupting any single byte of a v5 packet never panics the decoder.
    #[test]
    fn v5_decoder_total_under_corruption(
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let records = vec![FlowRecord {
            key: FlowKey {
                src: Ipv4Addr4::new(1, 2, 3, 4),
                dst: Ipv4Addr4::new(5, 6, 7, 8),
                src_port: 1,
                dst_port: 2,
                protocol: 6,
            },
            router: 1,
            direction: Direction::Ingress,
            first: Ts::from_millis(10),
            last: Ts::from_millis(20),
            packets: 3,
            bytes: 120,
            tcp_flags: 2,
        }];
        let mut wire = encode_v5(&records, Ts::from_secs(1), 0, 100);
        let at = idx.index(wire.len());
        wire[at] ^= 1 << bit;
        let _ = decode_v5(&wire); // must not panic
    }
}
