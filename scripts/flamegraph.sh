#!/usr/bin/env bash
# CPU flamegraph of one full-vantage pipeline run (the same workload the
# throughput bench measures), for finding hot stages behind the telemetry
# counters. Documented in EXPERIMENTS.md ("Profiling").
#
# Tool selection, in order of preference:
#   1. cargo flamegraph (cargo-flamegraph installed) -> flamegraph.svg
#   2. perf record + perf script                     -> perf-pipeline.data
#      (+ flamegraph.svg when the FlameGraph scripts are on PATH)
#   3. neither available -> first-party ah-trace span profile: run the
#      binary with --trace-out and keep the folded-stack export
#      (flamegraph.pl input; also loadable in Perfetto as Chrome JSON).
#      Works on air-gapped hosts with no profiler installed.
#
# Usage: scripts/flamegraph.sh [extra args passed to the binary]
#   e.g. scripts/flamegraph.sh --days 3 --threads 8
# The binary defaults are a 3-day tiny world on 4 shards; release profiles
# keep debug symbols (see [profile.release] in Cargo.toml), so stacks are
# readable without extra flags.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN_ARGS=("$@")
if [ ${#BIN_ARGS[@]} -eq 0 ]; then
  BIN_ARGS=(--days 3 --threads 4)
fi
OUT_DIR="${FLAMEGRAPH_OUT:-out}"
mkdir -p "$OUT_DIR"

if command -v cargo-flamegraph >/dev/null 2>&1 || cargo flamegraph --help >/dev/null 2>&1; then
  echo "==> cargo flamegraph -> $OUT_DIR/flamegraph.svg"
  cargo flamegraph --output "$OUT_DIR/flamegraph.svg" --bin aggressive-scanners \
    -- "${BIN_ARGS[@]}"
  echo "==> wrote $OUT_DIR/flamegraph.svg"
  exit 0
fi

if command -v perf >/dev/null 2>&1; then
  echo "==> cargo-flamegraph not found; falling back to perf"
  cargo build --release --bin aggressive-scanners
  perf record -F 997 -g --call-graph dwarf -o "$OUT_DIR/perf-pipeline.data" \
    target/release/aggressive-scanners "${BIN_ARGS[@]}"
  echo "==> wrote $OUT_DIR/perf-pipeline.data (inspect with: perf report -i $OUT_DIR/perf-pipeline.data)"
  if command -v stackcollapse-perf.pl >/dev/null 2>&1 && command -v flamegraph.pl >/dev/null 2>&1; then
    perf script -i "$OUT_DIR/perf-pipeline.data" | stackcollapse-perf.pl \
      | flamegraph.pl > "$OUT_DIR/flamegraph.svg"
    echo "==> wrote $OUT_DIR/flamegraph.svg"
  fi
  exit 0
fi

echo "==> no sampling profiler (cargo-flamegraph/perf); using the ah-trace span profile"
cargo build --release --bin aggressive-scanners
target/release/aggressive-scanners "${BIN_ARGS[@]}" \
  --trace-out "$OUT_DIR/trace-pipeline.json" --trace-sample 16
echo "==> wrote $OUT_DIR/trace-pipeline.json   (open in Perfetto / chrome://tracing)"
echo "==> wrote $OUT_DIR/trace-pipeline.folded (flamegraph.pl input)"
if command -v flamegraph.pl >/dev/null 2>&1; then
  flamegraph.pl --countname us "$OUT_DIR/trace-pipeline.folded" > "$OUT_DIR/flamegraph.svg"
  echo "==> wrote $OUT_DIR/flamegraph.svg"
else
  echo "    For an SVG: flamegraph.pl --countname us $OUT_DIR/trace-pipeline.folded > $OUT_DIR/flamegraph.svg"
  echo "    (spans are coarser than sampled stacks; install cargo-flamegraph or perf for CPU profiles)"
fi
exit 0
