//! Serial/parallel equivalence suite.
//!
//! The sharded engine's headline invariant: `run_parallel` produces
//! **bitwise identical** output to the serial `run` — same hitter lists,
//! same record tables, same flow datasets, same health ledgers — at any
//! thread count, with or without fault injection. Beyond the fingerprint
//! (which covers every externally meaningful field), the key collections
//! are compared directly so a regression names the field that diverged.

use aggressive_scanners::pipeline::{self, RunOptions, RunOutput};
use ah_core::defs::{Definition, Thresholds};
use ah_simnet::faults::FaultPlan;
use ah_simnet::scenario::ScenarioConfig;

/// Looser tail cuts so tiny scenarios yield non-trivial hitter lists.
fn test_thresholds() -> Thresholds {
    Thresholds { dispersion_fraction: 0.10, volume_alpha: 0.01, ports_alpha: 0.01 }
}

fn assert_equivalent(a: &RunOutput, b: &RunOutput, label: &str) {
    assert_eq!(a.generated_packets, b.generated_packets, "{label}: generated packets");
    assert_eq!(a.capture.total_packets, b.capture.total_packets, "{label}: capture totals");
    assert_eq!(a.capture.unique_sources, b.capture.unique_sources, "{label}: unique sources");
    assert_eq!(a.daily, b.daily, "{label}: daily rollups");
    for def in Definition::ALL {
        assert_eq!(a.report.hitters(def), b.report.hitters(def), "{label}: hitters {def:?}");
        assert_eq!(a.report.days(def), b.report.days(def), "{label}: day list {def:?}");
        for day in a.report.days(def) {
            assert_eq!(
                a.report.daily_hitters(def, day),
                b.report.daily_hitters(def, day),
                "{label}: daily hitters {def:?} day {day}"
            );
            assert_eq!(
                a.report.active_hitters(def, day),
                b.report.active_hitters(def, day),
                "{label}: active hitters {def:?} day {day}"
            );
            assert_eq!(
                a.report.ah_packets(def, day),
                b.report.ah_packets(def, day),
                "{label}: AH packets {def:?} day {day}"
            );
        }
    }
    assert_eq!(a.report.records(), b.report.records(), "{label}: event record table");
    match (a.merit_flows.as_ref(), b.merit_flows.as_ref()) {
        (Some(x), Some(y)) => {
            assert_eq!(x.records, y.records, "{label}: merit flow records");
            assert_eq!(x.router_days, y.router_days, "{label}: merit truth counters");
        }
        (None, None) => {}
        _ => panic!("{label}: merit dataset presence diverged"),
    }
    assert_eq!(
        a.cu_flows.as_ref().map(|f| &f.records),
        b.cu_flows.as_ref().map(|f| &f.records),
        "{label}: cu flow records"
    );
    assert_eq!(a.gn_entries, b.gn_entries, "{label}: honeypot entries");
    assert_eq!(a.health.stages, b.health.stages, "{label}: health ledgers");
    assert_eq!(a.fingerprint(), b.fingerprint(), "{label}: fingerprint");
}

#[test]
fn parallel_is_bitwise_identical_clean() {
    let opts = || RunOptions::full().with_thresholds(test_thresholds());
    let serial = pipeline::run(ScenarioConfig::tiny(2, 21), opts());
    for threads in [1, 2, 8] {
        let par = pipeline::run_parallel(ScenarioConfig::tiny(2, 21), opts(), threads);
        assert_equivalent(&serial, &par, &format!("clean, {threads} threads"));
    }
}

#[test]
fn parallel_is_bitwise_identical_under_faults() {
    let opts = || {
        RunOptions::full()
            .with_thresholds(test_thresholds())
            .with_faults(FaultPlan::uniform(0.01, 7))
    };
    let serial = pipeline::run(ScenarioConfig::tiny(2, 22), opts());
    assert!(
        serial.health.stage("faults.injector").is_some(),
        "fault plan must actually engage the injector"
    );
    for threads in [2, 8] {
        let par = pipeline::run_parallel(ScenarioConfig::tiny(2, 22), opts(), threads);
        assert_equivalent(&serial, &par, &format!("faulty, {threads} threads"));
    }
}

#[test]
fn parallel_darknet_only_matches() {
    let serial = pipeline::run(ScenarioConfig::tiny(2, 23), RunOptions::darknet_only());
    let par = pipeline::run_parallel(ScenarioConfig::tiny(2, 23), RunOptions::darknet_only(), 4);
    assert_equivalent(&serial, &par, "darknet-only, 4 threads");
}

#[test]
fn fingerprint_is_sensitive_to_inputs() {
    // Sanity: the fingerprint must not be a constant.
    let a = pipeline::run(ScenarioConfig::tiny(1, 31), RunOptions::darknet_only());
    let b = pipeline::run(ScenarioConfig::tiny(1, 32), RunOptions::darknet_only());
    assert_ne!(a.fingerprint(), b.fingerprint(), "different seeds must fingerprint differently");
}

// --- Durable-run equivalence ---------------------------------------------
//
// The write-ahead log must be observation-only: a run that logs every
// delivered packet, a replay of that log, and a run suspended mid-stream
// and resumed all produce bitwise identical output to a plain in-memory
// run — at any thread count, with or without fault injection.

use aggressive_scanners::pipeline::{Telemetry, WalOutcome, WalRun};
use std::path::PathBuf;

/// Fresh, collision-free WAL directory for one test case.
fn wal_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-determinism-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Unwrap a durable-run outcome that must have run to completion.
fn finished(outcome: std::io::Result<WalOutcome>, label: &str) -> RunOutput {
    *outcome
        .unwrap_or_else(|e| panic!("{label}: durable run failed: {e}"))
        .completed()
        .unwrap_or_else(|| panic!("{label}: run suspended unexpectedly"))
}

fn check_wal_equivalence(seed: u64, faults: Option<FaultPlan>, tag: &str) {
    let opts = || {
        let mut o = RunOptions::full().with_thresholds(test_thresholds());
        if let Some(plan) = faults {
            o = o.with_faults(plan);
        }
        o
    };
    let cfg = || ScenarioConfig::tiny(2, seed);
    let plain = pipeline::run(cfg(), opts());
    let mut tel = Telemetry::disabled();

    for threads in [1, 8] {
        // Live durable run == plain run, and its log replays identically.
        let dir = wal_dir(&format!("{tag}-t{threads}"));
        let live = finished(
            pipeline::run_parallel_wal(cfg(), opts(), threads, &WalRun::new(&dir), &mut tel),
            &format!("{tag}: wal live, {threads} threads"),
        );
        assert_equivalent(&plain, &live, &format!("{tag}: wal live, {threads} threads"));
        let replayed = pipeline::replay_wal(cfg(), opts(), &dir, &mut tel)
            .unwrap_or_else(|e| panic!("{tag}: replay failed: {e}"));
        assert_equivalent(&plain, &replayed, &format!("{tag}: replay, {threads} threads"));

        // Suspend mid-stream, then resume to completion == uninterrupted.
        let dir2 = wal_dir(&format!("{tag}-s{threads}"));
        let cut = plain.capture.total_packets.max(8) / 2;
        let wal = WalRun::new(&dir2).suspend_after(cut);
        match pipeline::run_parallel_wal(cfg(), opts(), threads, &wal, &mut tel) {
            Ok(WalOutcome::Suspended { delivered, .. }) => {
                assert_eq!(delivered, cut, "{tag}: suspension point honored")
            }
            Ok(WalOutcome::Completed(_)) => panic!("{tag}: run finished before suspension point"),
            Err(e) => panic!("{tag}: suspend run failed: {e}"),
        }
        let resumed = finished(
            pipeline::resume_wal(cfg(), opts(), &WalRun::new(&dir2), &mut tel),
            &format!("{tag}: resume, {threads} threads"),
        );
        assert_equivalent(&plain, &resumed, &format!("{tag}: resumed, {threads} threads"));

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}

/// Every log file in `dir`, as (name, bytes), sorted by name.
fn journal_bytes(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("wal dir readable")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(e.path()).expect("file readable"))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

/// The sharded engine journals in **dispatcher order**, before packets
/// fan out to shards — so the log a parallel run writes is not merely
/// equivalent to the serial one, it is the same bytes. This is what
/// makes a log resumable and replayable at any thread count: the WAL
/// never records how many shards produced it. Compare every segment
/// file and the index, byte for byte.
#[test]
fn parallel_wal_journal_is_byte_identical_to_serial() {
    let opts = || {
        RunOptions::full()
            .with_thresholds(test_thresholds())
            .with_faults(FaultPlan::uniform(0.01, 7))
    };
    let cfg = || ScenarioConfig::tiny(2, 24);
    let mut tel = Telemetry::disabled();

    let serial_dir = wal_dir("journal-serial");
    finished(
        pipeline::run_wal(cfg(), opts(), &WalRun::new(&serial_dir), &mut tel),
        "journal: serial",
    );
    let serial = journal_bytes(&serial_dir);
    assert!(!serial.is_empty(), "serial run wrote no journal files");

    for threads in [2, 8] {
        let par_dir = wal_dir(&format!("journal-par{threads}"));
        finished(
            pipeline::run_parallel_wal(cfg(), opts(), threads, &WalRun::new(&par_dir), &mut tel),
            &format!("journal: {threads} threads"),
        );
        let parallel = journal_bytes(&par_dir);
        let serial_names: Vec<&String> = serial.iter().map(|(n, _)| n).collect();
        let parallel_names: Vec<&String> = parallel.iter().map(|(n, _)| n).collect();
        assert_eq!(serial_names, parallel_names, "{threads} threads: journal file set");
        for ((name, want), (_, got)) in serial.iter().zip(parallel.iter()) {
            assert_eq!(want, got, "{threads} threads: {name} bytes diverged from serial");
        }
        let _ = std::fs::remove_dir_all(&par_dir);
    }
    let _ = std::fs::remove_dir_all(&serial_dir);
}

#[test]
fn wal_live_replay_and_resume_are_bitwise_identical_clean() {
    check_wal_equivalence(21, None, "wal-clean");
}

#[test]
fn wal_live_replay_and_resume_are_bitwise_identical_under_faults() {
    check_wal_equivalence(22, Some(FaultPlan::uniform(0.01, 7)), "wal-faulty");
}
