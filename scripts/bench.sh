#!/usr/bin/env bash
# Performance baselines: the end-to-end engine bench (serial vs sharded
# parallel) and the write-ahead log bench (append/recovery throughput,
# replay vs re-simulation), publishing machine-readable summaries as
# BENCH_pipeline.json and BENCH_wal.json in the repo root.
#
# The pipeline summary records packets/sec and speedup per thread count
# plus the host core count — on a single-core host the parallel engine
# can only exhibit its dispatch overhead, so interpret speedups against
# host_cpus. It also measures a parallel_trace configuration (widest
# thread count with a live ah-trace tracer at the default 1-in-64
# journey sampling); every other configuration runs with the noop
# tracer, so the delta is the price of tracing ON and the plain
# parallel numbers carry the trace-off cost (see BENCH.md). A
# parallel_mem configuration runs the same widest-thread workload with
# tagged-allocator accounting on; its per-tag peak bytes and the
# process peak RSS land in the summary's "memory" object. The WAL
# summary records append MB/s and frames/s, recovery time after a torn
# tail, the wall clock of plain vs durable vs replayed pipeline runs,
# and the memory profile of an accounted durable run.
set -euo pipefail
cd "$(dirname "$0")/.."

export BENCH_PIPELINE_OUT="${BENCH_PIPELINE_OUT:-$PWD/BENCH_pipeline.json}"
export BENCH_WAL_OUT="${BENCH_WAL_OUT:-$PWD/BENCH_wal.json}"
# Stamp the summaries with the measured revision; the benches fall back
# to their own `git rev-parse` when this is unset.
export GIT_COMMIT="${GIT_COMMIT:-$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)}"

echo "==> pipeline throughput bench (summary -> $BENCH_PIPELINE_OUT, commit $GIT_COMMIT)"
start=$(date +%s)
cargo bench -p ah-bench --bench pipeline
echo "==> bench wall clock: $(( $(date +%s) - start ))s (also recorded as wall_seconds in the summary)"

echo "==> WAL durability bench (summary -> $BENCH_WAL_OUT)"
start=$(date +%s)
cargo bench -p ah-bench --bench wal
echo "==> bench wall clock: $(( $(date +%s) - start ))s"

echo "==> summaries"
cat "$BENCH_PIPELINE_OUT"
cat "$BENCH_WAL_OUT"
