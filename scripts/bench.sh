#!/usr/bin/env bash
# Pipeline throughput baseline: runs the end-to-end engine bench (serial
# vs sharded parallel) and publishes the machine-readable summary as
# BENCH_pipeline.json in the repo root.
#
# The summary records packets/sec and speedup per thread count plus the
# host core count — on a single-core host the parallel engine can only
# exhibit its dispatch overhead, so interpret speedups against host_cpus.
set -euo pipefail
cd "$(dirname "$0")/.."

export BENCH_PIPELINE_OUT="${BENCH_PIPELINE_OUT:-$PWD/BENCH_pipeline.json}"
# Stamp the summary with the measured revision; the bench falls back to
# its own `git rev-parse` when this is unset.
export GIT_COMMIT="${GIT_COMMIT:-$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)}"

echo "==> pipeline throughput bench (summary -> $BENCH_PIPELINE_OUT, commit $GIT_COMMIT)"
start=$(date +%s)
cargo bench -p ah-bench --bench pipeline
echo "==> bench wall clock: $(( $(date +%s) - start ))s (also recorded as wall_seconds in the summary)"

echo "==> summary"
cat "$BENCH_PIPELINE_OUT"
