//! Fixture: atomic-ordering positives and negatives.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bad_relaxed(x: &AtomicUsize) -> usize {
    x.load(Ordering::Relaxed) //~ atomic-ordering
}

pub fn bad_seqcst(x: &AtomicUsize) {
    x.store(1, Ordering::SeqCst); //~ atomic-ordering
}

pub fn justified_relaxed(x: &AtomicUsize) -> usize {
    // ORDERING: plain counter read only at snapshot time; no ordering
    // beyond the atomicity of the load itself is required.
    x.load(Ordering::Relaxed)
}

pub fn safety_comment_also_justifies(x: &AtomicUsize) {
    // SAFETY: the flag is a pure latch; publication order is irrelevant.
    x.store(2, Ordering::Relaxed);
}

pub fn acquire_release_vocabulary_is_free(x: &AtomicUsize) -> usize {
    x.store(3, Ordering::Release);
    x.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let x = AtomicUsize::new(0);
        assert_eq!(x.load(Ordering::SeqCst), 0);
    }
}
