//! Time-ordered traffic multiplexing.
//!
//! Every traffic source implements [`Actor`]; the [`TrafficMux`] merges
//! their packet streams into one globally time-ordered stream using a
//! binary heap with exactly one outstanding entry per live actor.

use ah_mem::{MemScope, Tag};
use ah_net::packet::PacketMeta;
use ah_net::time::Ts;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A packet source with its own clock.
pub trait Actor {
    /// Time of the next packet, or `None` when the actor is finished.
    /// Must be non-decreasing across calls and stable between `emit`s.
    fn peek(&self) -> Option<Ts>;

    /// Emit the packet scheduled at [`Actor::peek`] and advance.
    ///
    /// Only called when `peek()` returned `Some`; the emitted packet's
    /// timestamp must equal that value.
    fn emit(&mut self) -> PacketMeta;
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    ts: Reverse<Ts>,
    /// Tie-break so the merge order is deterministic.
    idx: Reverse<usize>,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.idx).cmp(&(other.ts, other.idx))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges actors into one time-ordered packet stream.
pub struct TrafficMux {
    actors: Vec<Box<dyn Actor>>,
    heap: BinaryHeap<HeapEntry>,
    emitted: u64,
}

impl TrafficMux {
    /// An empty mux; add actors with [`TrafficMux::add`].
    pub fn new() -> TrafficMux {
        TrafficMux { actors: Vec::new(), heap: BinaryHeap::new(), emitted: 0 }
    }

    /// Add an actor; it is scheduled immediately if it has packets.
    pub fn add(&mut self, actor: Box<dyn Actor>) {
        let idx = self.actors.len();
        if let Some(ts) = actor.peek() {
            self.heap.push(HeapEntry { ts: Reverse(ts), idx: Reverse(idx) });
        }
        self.actors.push(actor);
    }

    /// Number of registered actors (live or finished).
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Total packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Next packet in global time order.
    pub fn next_packet(&mut self) -> Option<PacketMeta> {
        // Actor emission and heap churn are the mux's own memory
        // traffic; the caller's delivery path re-tags downstream.
        let _mem = MemScope::enter(Tag::Mux);
        let entry = self.heap.pop()?;
        let idx = entry.idx.0;
        let pkt = self.actors[idx].emit();
        debug_assert_eq!(pkt.ts, entry.ts.0, "actor emitted at a different time than it peeked");
        if let Some(ts) = self.actors[idx].peek() {
            debug_assert!(ts >= pkt.ts, "actor clock went backwards");
            self.heap.push(HeapEntry { ts: Reverse(ts), idx: Reverse(idx) });
        }
        self.emitted += 1;
        Some(pkt)
    }

    /// Run the whole simulation, passing every packet to `f`.
    pub fn drive(&mut self, mut f: impl FnMut(&PacketMeta)) {
        while let Some(pkt) = self.next_packet() {
            f(&pkt);
        }
    }

    /// Emit packets with timestamps strictly before `end`, passing each
    /// to `f`; packets at or after `end` stay queued.
    pub fn drive_until(&mut self, end: Ts, mut f: impl FnMut(&PacketMeta)) {
        loop {
            match self.heap.peek() {
                Some(top) if top.ts.0 < end => {}
                _ => break,
            }
            let Some(pkt) = self.next_packet() else { break };
            f(&pkt);
        }
    }
}

impl Default for TrafficMux {
    fn default() -> Self {
        TrafficMux::new()
    }
}

impl Iterator for TrafficMux {
    type Item = PacketMeta;

    fn next(&mut self) -> Option<PacketMeta> {
        self.next_packet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::ipv4::Ipv4Addr4;

    /// Emits `count` packets spaced `step` seconds apart starting at `start`.
    struct Ticker {
        start: u64,
        step: u64,
        count: u64,
        sent: u64,
        src: u8,
    }

    impl Actor for Ticker {
        fn peek(&self) -> Option<Ts> {
            (self.sent < self.count).then(|| Ts::from_secs(self.start + self.sent * self.step))
        }

        fn emit(&mut self) -> PacketMeta {
            let ts = self.peek().unwrap();
            self.sent += 1;
            PacketMeta::tcp_syn(
                ts,
                Ipv4Addr4::new(10, 0, 0, self.src),
                Ipv4Addr4::new(20, 0, 0, 1),
                1,
                80,
            )
        }
    }

    #[test]
    fn merges_in_time_order() {
        let mut mux = TrafficMux::new();
        mux.add(Box::new(Ticker { start: 0, step: 3, count: 5, sent: 0, src: 1 }));
        mux.add(Box::new(Ticker { start: 1, step: 3, count: 5, sent: 0, src: 2 }));
        mux.add(Box::new(Ticker { start: 2, step: 3, count: 5, sent: 0, src: 3 }));
        let times: Vec<u64> =
            std::iter::from_fn(|| mux.next_packet()).map(|p| p.ts.secs()).collect();
        assert_eq!(times.len(), 15);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert_eq!(times, (0..15).collect::<Vec<_>>());
        assert_eq!(mux.emitted(), 15);
    }

    #[test]
    fn empty_actor_is_never_scheduled() {
        let mut mux = TrafficMux::new();
        mux.add(Box::new(Ticker { start: 0, step: 1, count: 0, sent: 0, src: 1 }));
        assert!(mux.next_packet().is_none());
        assert_eq!(mux.actor_count(), 1);
    }

    #[test]
    fn ties_resolve_deterministically() {
        let run = || {
            let mut mux = TrafficMux::new();
            mux.add(Box::new(Ticker { start: 0, step: 1, count: 3, sent: 0, src: 1 }));
            mux.add(Box::new(Ticker { start: 0, step: 1, count: 3, sent: 0, src: 2 }));
            std::iter::from_fn(move || mux.next_packet())
                .map(|p| p.src.octets()[3])
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // Lower index wins ties.
        assert_eq!(run()[0], 1);
    }

    #[test]
    fn for_each_until_stops_at_boundary() {
        let mut mux = TrafficMux::new();
        mux.add(Box::new(Ticker { start: 0, step: 1, count: 10, sent: 0, src: 1 }));
        let mut before = 0;
        mux.drive_until(Ts::from_secs(5), |_| before += 1);
        assert_eq!(before, 5);
        let mut after = 0;
        mux.drive(|_| after += 1);
        assert_eq!(after, 5);
    }

    #[test]
    fn iterator_interface() {
        let mut mux = TrafficMux::new();
        mux.add(Box::new(Ticker { start: 0, step: 2, count: 4, sent: 0, src: 1 }));
        assert_eq!(mux.by_ref().count(), 4);
    }
}
