//! End-to-end pipeline throughput: the serial engine vs the sharded
//! parallel engine at increasing worker counts.
//!
//! Besides the Criterion measurements, the bench writes a machine-readable
//! summary (`BENCH_pipeline.json`, or the path in `$BENCH_PIPELINE_OUT`)
//! with packets-per-second per engine configuration, measured with a
//! best-of-three wall-clock loop over identical full-vantage runs. The
//! summary is what `scripts/bench.sh` publishes and what the throughput
//! table in `EXPERIMENTS.md` is generated from.

use aggressive_scanners::pipeline::{self, RunOptions};
use ah_simnet::scenario::ScenarioConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const SEED: u64 = 42;
const DAYS: u64 = 2;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg() -> ScenarioConfig {
    ScenarioConfig::tiny(DAYS, SEED)
}

fn run_once(threads: usize) -> u64 {
    if threads == 0 {
        pipeline::run(cfg(), RunOptions::full()).generated_packets
    } else {
        pipeline::run_parallel(cfg(), RunOptions::full(), threads).generated_packets
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let generated = run_once(0);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(generated));
    g.bench_function("serial", |b| b.iter(|| black_box(run_once(0))));
    for threads in THREAD_COUNTS {
        g.bench_function(&format!("parallel_{threads}"), |b| {
            b.iter(|| black_box(run_once(threads)))
        });
    }
    g.finish();
    write_summary(generated);
}

/// Best-of-three wall clock per configuration, written as JSON.
///
/// The host core count is recorded alongside the numbers: on a
/// single-core host every configuration timeshares one CPU, so the
/// parallel engine can only show its dispatch/ring overhead there —
/// speedup needs `host_cpus >= threads`.
fn write_summary(generated: u64) {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut lines = Vec::new();
    let mut serial_pps = 0.0f64;
    for (label, threads) in
        std::iter::once(("serial", 0usize)).chain(THREAD_COUNTS.iter().map(|&t| ("parallel", t)))
    {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            black_box(run_once(threads));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let pps = generated as f64 / best;
        if threads == 0 {
            serial_pps = pps;
        }
        let speedup = if serial_pps > 0.0 { pps / serial_pps } else { 1.0 };
        eprintln!(
            "[bench] {label}{}: {:.3}s, {:.0} pkts/s, {speedup:.2}x vs serial",
            if threads == 0 { String::new() } else { format!("_{threads}") },
            best,
            pps,
        );
        lines.push(format!(
            concat!(
                "    {{\"engine\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, ",
                "\"packets_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}}}"
            ),
            label, threads, best, pps, speedup
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"scenario\": \"tiny({DAYS} days, seed {SEED})\",\n  \
         \"generated_packets\": {generated},\n  \"host_cpus\": {host_cpus},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    let path =
        std::env::var("BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {path}"),
        Err(e) => eprintln!("[bench] could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
