//! Append path: batched group-commit writer with segment rotation.
//!
//! [`WalWriter`] owns one WAL directory. Appends are encoded into an
//! in-memory pending buffer and made durable in batches: when
//! [`WalWriterConfig::group_commit_frames`] frames accumulate (or on an
//! explicit [`WalWriter::commit`]), the buffer is written and
//! `fdatasync`'d in one call — one syscall pair per batch instead of per
//! record. [`WalWriter::durable_seq`] is the watermark: everything below
//! it survives a crash, everything above it is best-effort and will be
//! truncated away by recovery.
//!
//! Segments rotate once the current file crosses
//! [`WalWriterConfig::segment_bytes`]; rotation happens on a commit
//! boundary, rewrites the segment index atomically, and opens the next
//! `<base_seq:016x>.seg` with a fresh header. Frames never span
//! segments.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use ah_mem::{MemScope, Tag};
use ah_obs::{Counter, Gauge, Recorder};

use crate::frame::{append_frame, FRAME_HEADER_BYTES};
use crate::record::WalRecord;
use crate::segment::{
    encode_segment_header, segment_file_name, segment_paths, write_index, IndexEntry,
    SEGMENT_HEADER_BYTES,
};

/// Tunables for the append path.
#[derive(Debug, Clone, Copy)]
pub struct WalWriterConfig {
    /// Frames per group commit: the pending buffer is flushed and synced
    /// once this many appends accumulate.
    pub group_commit_frames: usize,
    /// Rotate to a new segment once the current file reaches this size.
    pub segment_bytes: u64,
}

impl Default for WalWriterConfig {
    fn default() -> Self {
        // 4096 small frames is a few hundred KB of pending data — large
        // enough that fsync cost amortizes to noise against simulation
        // (a darknet day delivers millions of packets), small enough
        // that a crash loses at most a fraction of a second of stream.
        WalWriterConfig { group_commit_frames: 4096, segment_bytes: 8 << 20 }
    }
}

/// Writer-side metrics (`ah_wal_writer_*`).
#[derive(Debug, Clone, Default)]
struct WriterMetrics {
    frames: Counter,
    bytes: Counter,
    commits: Counter,
    rotations: Counter,
    seals: Counter,
    pending: Gauge,
    durable: Gauge,
}

impl WriterMetrics {
    fn new(rec: &Recorder) -> WriterMetrics {
        // Instruments are interned in the recorder, which outlives any
        // run — charge them to Obs, not the run-scoped Wal tag.
        let _mem = MemScope::enter(Tag::Obs);
        WriterMetrics {
            frames: rec.counter("ah_wal_writer_frames_total"),
            bytes: rec.counter("ah_wal_writer_bytes_total"),
            commits: rec.counter("ah_wal_writer_commits_total"),
            rotations: rec.counter("ah_wal_writer_rotations_total"),
            seals: rec.counter("ah_wal_writer_seals_total"),
            pending: rec.gauge("ah_wal_writer_pending_frames"),
            durable: rec.gauge("ah_wal_writer_durable_seq"),
        }
    }
}

/// Append handle over one WAL directory.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    cfg: WalWriterConfig,
    file: fs::File,
    seg_base: u64,
    seg_frames: u64,
    seg_bytes: u64,
    next_seq: u64,
    durable_seq: u64,
    pending: Vec<u8>,
    pending_frames: usize,
    last_frame_start: usize,
    index: Vec<IndexEntry>,
    sealed: bool,
    scratch: Vec<u8>,
    metrics: WriterMetrics,
    tracer: ah_trace::Tracer,
}

impl WalWriter {
    /// Create a fresh log in `dir` (created if absent). Fails with
    /// [`io::ErrorKind::AlreadyExists`] if the directory already holds
    /// segments — recovery + [`WalWriter::resume`] is the path for that.
    ///
    /// # Examples
    ///
    /// Append a few packet records, group-commit them durable, and
    /// stream them back through recovery:
    ///
    /// ```
    /// use ah_net::{Ipv4Addr4, PacketMeta, Ts};
    /// use ah_obs::Recorder;
    /// use ah_wal::record::WalRecord;
    /// use ah_wal::writer::{WalWriter, WalWriterConfig};
    ///
    /// let dir = std::env::temp_dir().join(format!("wal-doc-create-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let rec = Recorder::noop();
    /// let mut w = WalWriter::create(&dir, WalWriterConfig::default(), &rec)?;
    /// for i in 0..3u16 {
    ///     let pkt = PacketMeta::tcp_syn(
    ///         Ts::from_secs(u64::from(i)),
    ///         Ipv4Addr4(0x0a00_0001),
    ///         Ipv4Addr4(0xc000_0202),
    ///         40_000 + i,
    ///         443,
    ///     );
    ///     w.append(&WalRecord::Packet(pkt))?;
    /// }
    /// assert_eq!(w.durable_seq(), 0, "appends buffer until the group commit");
    /// w.commit()?;
    /// assert_eq!(w.durable_seq(), 3);
    /// drop(w);
    ///
    /// let mut packets = 0;
    /// let log = ah_wal::recover::recover(&dir, &rec, |_seq, _raw, record| {
    ///     if matches!(record, WalRecord::Packet(_)) {
    ///         packets += 1;
    ///     }
    /// })?;
    /// assert_eq!((packets, log.next_seq, log.is_sealed()), (3, 3, false));
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn create(dir: &Path, cfg: WalWriterConfig, rec: &Recorder) -> io::Result<WalWriter> {
        let _mem = MemScope::enter(Tag::Wal);
        fs::create_dir_all(dir)?;
        if !segment_paths(dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds WAL segments", dir.display()),
            ));
        }
        let file = open_segment(dir, 0, true)?;
        let mut w = WalWriter {
            dir: dir.to_path_buf(),
            cfg,
            file,
            seg_base: 0,
            seg_frames: 0,
            seg_bytes: SEGMENT_HEADER_BYTES as u64,
            next_seq: 0,
            durable_seq: 0,
            pending: Vec::new(),
            pending_frames: 0,
            last_frame_start: 0,
            index: Vec::new(),
            sealed: false,
            scratch: Vec::new(),
            metrics: WriterMetrics::new(rec),
            tracer: ah_trace::Tracer::noop(),
        };
        w.push_index_entry();
        write_index(dir, &w.index)?;
        Ok(w)
    }

    /// Reopen an existing, recovered, unsealed log for appending.
    /// `next_seq` must be the recovery scanner's watermark: the sequence
    /// number the next append will get. The last segment on disk is
    /// opened in append mode; a fresh directory behaves like
    /// [`WalWriter::create`].
    pub fn resume(
        dir: &Path,
        cfg: WalWriterConfig,
        next_seq: u64,
        rec: &Recorder,
    ) -> io::Result<WalWriter> {
        let _mem = MemScope::enter(Tag::Wal);
        let segs = segment_paths(dir)?;
        let Some(&(seg_base, ref path)) = segs.last() else {
            return WalWriter::create(dir, cfg, rec);
        };
        if next_seq < seg_base {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("resume watermark {next_seq} precedes last segment base {seg_base}"),
            ));
        }
        let seg_bytes = fs::metadata(path)?.len();
        let file = fs::OpenOptions::new().append(true).open(path)?;
        let mut w = WalWriter {
            dir: dir.to_path_buf(),
            cfg,
            file,
            seg_base,
            seg_frames: next_seq - seg_base,
            seg_bytes,
            next_seq,
            durable_seq: next_seq,
            pending: Vec::new(),
            pending_frames: 0,
            last_frame_start: 0,
            index: Vec::new(),
            sealed: false,
            scratch: Vec::new(),
            metrics: WriterMetrics::new(rec),
            tracer: ah_trace::Tracer::noop(),
        };
        for &(base, ref p) in &segs {
            let bytes = if base == seg_base { seg_bytes } else { fs::metadata(p)?.len() };
            w.index.push(IndexEntry {
                base_seq: base,
                frames: if base == seg_base {
                    next_seq - base
                } else {
                    // Filled from the next segment's base below.
                    0
                },
                bytes,
                sealed: false,
            });
        }
        for i in 0..w.index.len().saturating_sub(1) {
            w.index[i].frames = w.index[i + 1].base_seq - w.index[i].base_seq;
        }
        write_index(dir, &w.index)?;
        w.metrics.durable.set(w.durable_seq as i64);
        Ok(w)
    }

    /// Attach a tracer: group commits, fsyncs, segment rotations and the
    /// final seal each get spans (`ah_wal_writer_commit`,
    /// `ah_wal_writer_fsync`, `ah_wal_writer_rotate`,
    /// `ah_wal_writer_seal`). Observation-only: the bytes on disk and
    /// the durability watermark are unchanged.
    pub fn set_tracer(&mut self, tracer: &ah_trace::Tracer) {
        self.tracer = tracer.clone();
    }

    /// The WAL directory this writer appends to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Durability watermark: all frames with `seq < durable_seq` have
    /// been written and fsync'd.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// True once [`WalWriter::seal`] has run.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Append one record; returns its sequence number. Durable only
    /// after the enclosing group commit (automatic every
    /// `group_commit_frames` appends, or via [`WalWriter::commit`]).
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<u64> {
        let _mem = MemScope::enter(Tag::Wal);
        self.scratch.clear();
        rec.encode_payload(&mut self.scratch);
        let payload = std::mem::take(&mut self.scratch);
        let seq = self.append_payload(&payload)?;
        self.scratch = payload;
        Ok(seq)
    }

    /// Append one pre-encoded frame payload; returns its sequence number.
    pub fn append_payload(&mut self, payload: &[u8]) -> io::Result<u64> {
        let _mem = MemScope::enter(Tag::Wal);
        if self.sealed {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "append to sealed WAL"));
        }
        let seq = self.next_seq;
        self.last_frame_start = self.pending.len();
        append_frame(&mut self.pending, seq, payload);
        self.next_seq += 1;
        self.pending_frames += 1;
        self.metrics.frames.inc();
        self.metrics.bytes.add((FRAME_HEADER_BYTES + payload.len()) as u64);
        self.metrics.pending.set(self.pending_frames as i64);
        if self.pending_frames >= self.cfg.group_commit_frames {
            self.commit()?;
        }
        Ok(seq)
    }

    /// Group commit: write the pending buffer, `fdatasync`, advance the
    /// durable watermark, then rotate if the segment crossed its size
    /// budget. A no-op when nothing is pending.
    pub fn commit(&mut self) -> io::Result<()> {
        let _mem = MemScope::enter(Tag::Wal);
        if !self.pending.is_empty() {
            let _commit = self.tracer.span("ah_wal_writer_commit");
            self.file.write_all(&self.pending)?;
            {
                let _fsync = self.tracer.span("ah_wal_writer_fsync");
                self.file.sync_data()?;
            }
            self.seg_bytes += self.pending.len() as u64;
            self.seg_frames += self.pending_frames as u64;
            self.durable_seq = self.next_seq;
            self.pending.clear();
            self.pending_frames = 0;
            self.last_frame_start = 0;
            self.metrics.commits.inc();
            self.metrics.pending.set(0);
            self.metrics.durable.set(self.durable_seq as i64);
            self.sync_index_tail();
        }
        if self.seg_bytes >= self.cfg.segment_bytes && !self.sealed {
            self.rotate()?;
        }
        Ok(())
    }

    /// Append the run's seal record, force a final commit, and mark the
    /// log sealed in the segment index. Further appends fail.
    pub fn seal(&mut self, seal: crate::record::RunSeal) -> io::Result<()> {
        let _mem = MemScope::enter(Tag::Wal);
        let _trace = self.tracer.span("ah_wal_writer_seal");
        self.append(&WalRecord::Seal(seal))?;
        self.commit()?;
        self.sealed = true;
        if let Some(last) = self.index.last_mut() {
            last.sealed = true;
        }
        write_index(&self.dir, &self.index)?;
        self.metrics.seals.inc();
        Ok(())
    }

    /// Simulate a crash mid-group-commit: write the pending buffer up to
    /// a point strictly inside its final frame (earlier pending frames
    /// land whole; the last is torn), skip the fsync, and abort the
    /// process. Used by the CI crash-recovery gate and chaos tests;
    /// recovery must truncate the torn frame and report
    /// `durable_seq` as the watermark.
    pub fn crash_with_torn_tail(&mut self) -> ! {
        if self.pending.is_empty() {
            // Nothing buffered: tear a bare header so the tail is still
            // a torn write rather than a clean end.
            self.pending.extend_from_slice(&[0x5A; FRAME_HEADER_BYTES]);
            self.last_frame_start = 0;
        }
        let tail = self.pending.len() - self.last_frame_start;
        let cut = self.last_frame_start + (tail / 2).max(1);
        let cut = cut.min(self.pending.len().saturating_sub(1)).max(1);
        let _ = self.file.write_all(&self.pending[..cut]);
        let _ = self.file.flush();
        // Deliberately no sync_data(): the torn bytes may or may not
        // reach disk, exactly like a real crash. abort() skips all
        // destructors and exit handlers.
        std::process::abort()
    }

    fn push_index_entry(&mut self) {
        self.index.push(IndexEntry {
            base_seq: self.seg_base,
            frames: 0,
            bytes: SEGMENT_HEADER_BYTES as u64,
            sealed: false,
        });
    }

    fn sync_index_tail(&mut self) {
        if let Some(last) = self.index.last_mut() {
            last.frames = self.seg_frames;
            last.bytes = self.seg_bytes;
        }
    }

    fn rotate(&mut self) -> io::Result<()> {
        let _trace = self.tracer.span("ah_wal_writer_rotate");
        self.file.sync_data()?;
        self.sync_index_tail();
        self.seg_base = self.next_seq;
        self.seg_frames = 0;
        self.seg_bytes = SEGMENT_HEADER_BYTES as u64;
        self.file = open_segment(&self.dir, self.seg_base, false)?;
        self.push_index_entry();
        write_index(&self.dir, &self.index)?;
        self.metrics.rotations.inc();
        Ok(())
    }
}

/// Create segment `base_seq` in `dir`, write and sync its header, and
/// durably record the new file in the directory.
fn open_segment(dir: &Path, base_seq: u64, first: bool) -> io::Result<fs::File> {
    let path = dir.join(segment_file_name(base_seq));
    let mut opts = fs::OpenOptions::new();
    opts.write(true).create_new(true);
    let mut file = match opts.open(&path) {
        Ok(f) => f,
        Err(e) if first && e.kind() == io::ErrorKind::AlreadyExists => {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already exists", path.display()),
            ));
        }
        Err(e) => return Err(e),
    };
    file.write_all(&encode_segment_header(base_seq))?;
    file.sync_data()?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunSeal;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ah-wal-writer-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seal_rec() -> RunSeal {
        RunSeal { generated: 1, delivered: 1, packet_hash: 2, injector: None }
    }

    #[test]
    fn create_append_commit() {
        let dir = tmp("basic");
        let rec = Recorder::new();
        let mut w = WalWriter::create(&dir, WalWriterConfig::default(), &rec).unwrap();
        assert_eq!(w.next_seq(), 0);
        for _ in 0..10 {
            w.append_payload(b"\x02payload").unwrap();
        }
        assert_eq!(w.next_seq(), 10);
        assert_eq!(w.durable_seq(), 0, "group commit threshold not reached");
        w.commit().unwrap();
        assert_eq!(w.durable_seq(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_log() {
        let dir = tmp("exists");
        let rec = Recorder::new();
        let w = WalWriter::create(&dir, WalWriterConfig::default(), &rec).unwrap();
        drop(w);
        let err = WalWriter::create(&dir, WalWriterConfig::default(), &rec).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_produces_multiple_segments() {
        let dir = tmp("rotate");
        let rec = Recorder::new();
        let cfg = WalWriterConfig { group_commit_frames: 4, segment_bytes: 256 };
        let mut w = WalWriter::create(&dir, cfg, &rec).unwrap();
        for _ in 0..64 {
            w.append_payload(&[2u8; 32]).unwrap();
        }
        w.commit().unwrap();
        let segs = segment_paths(&dir).unwrap();
        assert!(segs.len() > 1, "expected rotation, got {} segment(s)", segs.len());
        for pair in segs.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_log_rejects_appends() {
        let dir = tmp("sealed");
        let rec = Recorder::new();
        let mut w = WalWriter::create(&dir, WalWriterConfig::default(), &rec).unwrap();
        w.append_payload(b"\x02payload").unwrap();
        w.seal(seal_rec()).unwrap();
        assert!(w.is_sealed());
        assert!(w.append_payload(b"\x02x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
