//! `ah-lint` — the workspace's first-party invariant checker.
//!
//! Clippy and rustc enforce the general-purpose rules; this tool
//! enforces the *house* rules that no off-the-shelf linter knows:
//!
//! * [`panic-path`](lints::LINTS): library code does not
//!   `unwrap`/`expect`/`panic!` — fallible paths return `Result`, and
//!   the few genuinely-impossible cases carry an audited suppression
//!   with a written reason;
//! * `atomic-ordering`: `SeqCst` and `Relaxed` appear only at sites a
//!   comment justifies — everything else uses the acquire/release
//!   vocabulary the model checker (see `vendor/interleave`) verifies;
//! * `metric-name`: every metric registered through `ah_obs` is named
//!   by a string literal this tool can check against
//!   [`ah_obs::valid_metric_name`] *before* the code ever runs;
//! * `unsafe-safety-comment`, `doc-header`, `unsafe-forbid`:
//!   unsafe hygiene and documentation posture, mechanically held;
//! * `doc-link` (via `--md`, see [`mdcheck`]): every markdown
//!   cross-reference in the repo resolves — relative paths exist and
//!   `#anchors` match a real heading.
//!
//! The analysis is token-level on a first-party lexer ([`lexer`]) —
//! no syntax tree, no proc macros, no external parser crate. That is a
//! deliberate trade: the lints gain immunity to code inside strings
//! and comments (the failure mode of grep-based CI checks, which this
//! tool replaces) without taking on a parser dependency, at the cost
//! of not seeing through macro expansions. House rules are about
//! source text discipline, so token-level is the right altitude.
//!
//! Suppressions are in-band and audited:
//! `// ah-lint: allow(<id>, reason = "…")` for a line,
//! `// ah-lint: allow-file(<id>, reason = "…")` for a file; a missing
//! or empty reason is itself a finding (`bad-suppression`), and a
//! suppression whose lint would not have fired anyway is reported as
//! `unused-suppression` so stale allows cannot accumulate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod mdcheck;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lints::{Diagnostic, LINTS};

/// Lint one in-memory source file.
///
/// `path` is only used for display; `crate_root` turns on the
/// whole-file posture lints (`doc-header`, `unsafe-forbid`);
/// `enabled` selects lints by id.
pub fn lint_source(
    path: &str,
    src: &str,
    crate_root: bool,
    enabled: &dyn Fn(&str) -> bool,
) -> Vec<Diagnostic> {
    let tokens = lexer::lex(src);
    let test_ranges = lints::test_ranges(&tokens);
    let ctx = lints::FileCtx { path, crate_root, tokens: &tokens, test_ranges };
    lints::run_lints(&ctx, enabled)
}

/// The library source files of the workspace rooted at `root`: every
/// `.rs` under `src/`, `crates/*/src/`, and `vendor/*/src/`.
/// Integration tests, benches, and fixtures are intentionally out of
/// scope — the house rules govern shipped library code.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut src_dirs = vec![root.join("src")];
    for parent in ["crates", "vendor"] {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        src_dirs.append(&mut members);
    }
    let mut files = Vec::new();
    for dir in src_dirs {
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Outcome of a workspace run: findings plus how much was scanned.
pub struct RunReport {
    /// All findings, ordered by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lint every library source file of the workspace at `root`.
pub fn run_workspace(root: &Path, enabled: &dyn Fn(&str) -> bool) -> Result<RunReport, String> {
    let files = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diagnostics = Vec::new();
    for path in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let display = path.strip_prefix(root).unwrap_or(path).display().to_string();
        let crate_root = path.file_name().is_some_and(|n| n == "lib.rs")
            && path.parent().and_then(|p| p.file_name()).is_some_and(|n| n == "src");
        diagnostics.extend(lint_source(&display, &src, crate_root, enabled));
    }
    Ok(RunReport { diagnostics, files_scanned: files.len() })
}
