//! Darknet events ("logical scans").
//!
//! Following Durumeric et al. and the paper's Section 2.A, a *darknet
//! event* summarizes the activity of one source IP toward one destination
//! port and traffic type. An event ends when no packet has been seen for
//! more than the idle timeout; the completed event records its start/end
//! timestamps, packet and byte totals, the number of *unique dark
//! destinations* contacted, and per-tool fingerprint attribution.
//!
//! # Reordering policy — per-key, not global
//!
//! Real capture pipelines deliver slightly out-of-order packets. Each
//! *event* tolerates packets up to `reorder_window` (default: half the
//! idle timeout) older than the newest timestamp **that event** has
//! seen: such a packet joins its event normally, and if it predates the
//! event's recorded start, the start is *repaired* backwards. Packets
//! older than the event's own window are *quarantined* — counted in
//! [`AggregatorStats`], never merged — so a single wildly-late packet
//! cannot stretch an event across hours. Every observed packet lands in
//! exactly one of `accepted` or `quarantined`.
//!
//! Judging lateness against the event's own clock (rather than a global
//! watermark over all sources) makes every accept/quarantine/split
//! decision a pure function of the packet subsequence *for that key*.
//! That is what lets the sharded parallel pipeline partition sources
//! across threads with no shared clock: each key's packets all land on
//! one shard in their serial relative order, so per-key decisions — and
//! therefore event contents — are bitwise-identical at any thread
//! count. Timed expiry stays content-neutral by carrying an extra
//! `reorder_window` of slack (see [`EventAggregator::advance`]): by the
//! time a sweep may close an event, any future packet for that key is
//! guaranteed to start a fresh event anyway, provided the input's
//! per-key disorder is bounded by `reorder_window` (the fault layer's
//! `max_skew ≤ reorder_window` contract). See `ARCHITECTURE.md` §11.

use crate::dstset::DstSet;
use ah_net::fingerprint::{classify, Tool};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::{PacketMeta, ScanClass};
use ah_net::time::{Dur, Ts};
use ah_obs::{Counter, Gauge, Histogram, Recorder};
use std::collections::HashMap;

/// Key identifying a logical scan.
///
/// ICMP has no ports; its events use port 0, mirroring how the darknet
/// events dataset encodes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    /// Scanning source address.
    pub src: Ipv4Addr4,
    /// Targeted destination port (0 for ICMP).
    pub dst_port: u16,
    /// Traffic type (TCP SYN / UDP / ICMP echo).
    pub class: ScanClass,
}

impl EventKey {
    /// The key for a scanning packet.
    pub fn of(pkt: &PacketMeta, class: ScanClass) -> EventKey {
        EventKey { src: pkt.src, dst_port: pkt.dst_port().unwrap_or(0), class }
    }
}

/// Per-tool packet counters, indexed by [`Tool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ToolCounts {
    /// Packets carrying the ZMap fingerprint.
    pub zmap: u64,
    /// Packets carrying the Masscan fingerprint.
    pub masscan: u64,
    /// Packets carrying the Mirai fingerprint.
    pub mirai: u64,
    /// Packets with no known tool fingerprint.
    pub other: u64,
}

impl ToolCounts {
    /// Increment the counter for a tool.
    pub fn add(&mut self, tool: Tool, n: u64) {
        match tool {
            Tool::ZMap => self.zmap += n,
            Tool::Masscan => self.masscan += n,
            Tool::Mirai => self.mirai += n,
            Tool::Other => self.other += n,
        }
    }

    /// Total across tools.
    pub fn total(&self) -> u64 {
        self.zmap + self.masscan + self.mirai + self.other
    }

    /// The dominant tool (ties broken in ZMap→Masscan→Mirai→Other order);
    /// `Tool::Other` for an empty counter.
    pub fn dominant(&self) -> Tool {
        let pairs = [
            (self.zmap, Tool::ZMap),
            (self.masscan, Tool::Masscan),
            (self.mirai, Tool::Mirai),
            (self.other, Tool::Other),
        ];
        // `max_by_key` keeps the *last* maximum; iterate reversed so that
        // ties resolve to the earliest entry (ZMap first).
        pairs
            .iter()
            .rev()
            .max_by_key(|(n, _)| *n)
            .filter(|(n, _)| *n > 0)
            .map_or(Tool::Other, |(_, t)| *t)
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &ToolCounts) {
        self.zmap += other.zmap;
        self.masscan += other.masscan;
        self.mirai += other.mirai;
        self.other += other.other;
    }
}

/// A completed darknet event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DarknetEvent {
    /// The (source, port, type) identity of the logical scan.
    pub key: EventKey,
    /// Timestamp of the event's first packet.
    pub start: Ts,
    /// Timestamp of the event's last packet.
    pub end: Ts,
    /// Total scanning packets in the event.
    pub packets: u64,
    /// Total wire bytes.
    pub bytes: u64,
    /// Exact number of unique dark destinations contacted.
    pub unique_dsts: u32,
    /// Size of the dark space the event was measured against.
    pub dark_size: u32,
    /// Packets per tool fingerprint.
    pub tools: ToolCounts,
}

impl DarknetEvent {
    /// Fraction of the dark space touched, in [0, 1] — the address
    /// dispersion that Definition 1 thresholds at 10%.
    pub fn dispersion(&self) -> f64 {
        if self.dark_size == 0 {
            0.0
        } else {
            f64::from(self.unique_dsts) / f64::from(self.dark_size)
        }
    }

    /// Day index the event started in.
    pub fn start_day(&self) -> u64 {
        self.start.day()
    }

    /// Inclusive range of day indices the event overlaps.
    pub fn days(&self) -> std::ops::RangeInclusive<u64> {
        self.start.day()..=self.end.day()
    }
}

/// Input-fate counters for the aggregator's reordering policy.
///
/// Conservation: `received == accepted + quarantined`; `late_accepted`
/// and `start_repaired` are subsets of `accepted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Packets offered via `observe`.
    pub received: u64,
    /// Packets merged into an event.
    pub accepted: u64,
    /// Accepted packets that arrived behind their event's newest
    /// timestamp (within the reorder window).
    pub late_accepted: u64,
    /// Accepted packets that moved an event's start earlier.
    pub start_repaired: u64,
    /// Packets older than the reorder window, counted and dropped.
    pub quarantined: u64,
}

impl AggregatorStats {
    /// Sum another shard's counters into this one (order-insensitive).
    pub fn merge(&mut self, other: &AggregatorStats) {
        self.received += other.received;
        self.accepted += other.accepted;
        self.late_accepted += other.late_accepted;
        self.start_repaired += other.start_repaired;
        self.quarantined += other.quarantined;
    }
}

struct ActiveEvent {
    start: Ts,
    last: Ts,
    packets: u64,
    bytes: u64,
    dsts: DstSet,
    tools: ToolCounts,
}

/// Streaming aggregator turning scanning packets into darknet events.
///
/// Feed time-ordered packets with [`EventAggregator::observe`]; call
/// [`EventAggregator::advance`] periodically (any granularity) to expire
/// idle events, and [`EventAggregator::flush`] at end of trace.
pub struct EventAggregator {
    timeout: Dur,
    dark_size: u32,
    active: HashMap<EventKey, ActiveEvent>,
    /// Completed events are drained by the caller.
    completed: Vec<DarknetEvent>,
    /// Watermark of the last periodic sweep.
    last_sweep: Ts,
    /// How often `observe` triggers an implicit expiration sweep.
    sweep_every: Dur,
    /// Newest packet timestamp seen so far. Content-neutral: it drives
    /// only the implicit sweep schedule and the lag histogram, never an
    /// accept/quarantine decision (those are per-key).
    watermark: Ts,
    /// Max lateness (behind its event's newest timestamp) a packet may
    /// have and still be merged into that event.
    reorder_window: Dur,
    stats: AggregatorStats,
    /// Telemetry (inert until [`EventAggregator::set_recorder`]).
    m_received: Counter,
    m_accepted: Counter,
    m_quarantined: Counter,
    m_lag_us: Histogram,
    m_active_hwm: Gauge,
    m_events_total: Counter,
    m_sweeps: Counter,
    m_sweep_us: Histogram,
    /// Trace handle (inert until [`EventAggregator::set_tracer`]).
    tracer: ah_trace::Tracer,
}

impl EventAggregator {
    /// `dark_size` is the number of addressable dark IPs (destination ids
    /// passed to `observe` must be below it); `timeout` is the idle gap
    /// that terminates an event.
    pub fn new(dark_size: u32, timeout: Dur) -> EventAggregator {
        Self::with_reorder_window(dark_size, timeout, Dur(timeout.0 / 2))
    }

    /// Like [`EventAggregator::new`], with an explicit reorder window
    /// instead of the `timeout / 2` default.
    pub fn with_reorder_window(dark_size: u32, timeout: Dur, window: Dur) -> EventAggregator {
        EventAggregator {
            timeout,
            dark_size,
            active: HashMap::new(),
            completed: Vec::new(),
            last_sweep: Ts::ZERO,
            sweep_every: Dur(timeout.0 / 2),
            watermark: Ts::ZERO,
            reorder_window: window,
            stats: AggregatorStats::default(),
            m_received: Counter::default(),
            m_accepted: Counter::default(),
            m_quarantined: Counter::default(),
            m_lag_us: Histogram::default(),
            m_active_hwm: Gauge::default(),
            m_events_total: Counter::default(),
            m_sweeps: Counter::default(),
            m_sweep_us: Histogram::default(),
            tracer: ah_trace::Tracer::noop(),
        }
    }

    /// Attach live telemetry instruments (`ah_telescope_agg_*`).
    ///
    /// Observation-only: instruments mirror the accounting the
    /// aggregator already does and never influence event semantics.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.m_received = rec.counter("ah_telescope_agg_packets_received_total");
        self.m_accepted = rec.counter("ah_telescope_agg_packets_accepted_total");
        self.m_quarantined = rec.counter("ah_telescope_agg_packets_quarantined_total");
        self.m_lag_us =
            rec.histogram("ah_telescope_agg_watermark_lag_us", ah_obs::LATENCY_US_BUCKETS);
        self.m_active_hwm = rec.gauge("ah_telescope_agg_active_events_hwm");
        self.m_events_total = rec.counter("ah_telescope_agg_events_completed_total");
        self.m_sweeps = rec.counter("ah_telescope_agg_sweeps_total");
        self.m_sweep_us =
            rec.histogram("ah_telescope_agg_sweep_duration_us", ah_obs::LATENCY_US_BUCKETS);
    }

    /// Attach a tracer: every timed expiry sweep emits an
    /// `ah_telescope_agg_sweep` span on the sweeping thread's track.
    /// Observation-only — sweep timing and event contents are unchanged.
    pub fn set_tracer(&mut self, tracer: &ah_trace::Tracer) {
        self.tracer = tracer.clone();
    }

    /// Number of currently active (unexpired) events.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Input-fate counters (reordering policy accounting).
    pub fn stats(&self) -> AggregatorStats {
        self.stats
    }

    /// Observe one scanning packet. `dst_index` is the packet's dense
    /// index within the dark space (see [`crate::capture::DarkSpace`]).
    ///
    /// Packets should arrive in roughly non-decreasing time order.
    /// Reordering up to `reorder_window` behind the newest timestamp
    /// *of the packet's own event* is absorbed (the event's start is
    /// repaired backwards if needed); anything older is quarantined,
    /// not merged. Because the verdict depends only on per-key state,
    /// the outcome is identical whether the full stream or any
    /// source-partitioned substream is fed — the property the sharded
    /// parallel engine relies on (`ARCHITECTURE.md` §11).
    pub fn observe(&mut self, pkt: &PacketMeta, class: ScanClass, dst_index: u32) {
        self.stats.received += 1;
        self.m_received.inc();
        self.m_lag_us.observe(self.watermark.since(pkt.ts).0);
        self.watermark = self.watermark.max(pkt.ts);
        // Implicit periodic sweep keeps the active map bounded even if the
        // caller never calls `advance`. Driven by the watermark so a late
        // packet never rewinds the sweep schedule; content-neutral thanks
        // to the `advance` slack, so shards sweeping on their own local
        // watermarks still produce identical events.
        if self.watermark.since(self.last_sweep) >= self.sweep_every {
            self.advance(self.watermark);
        }
        let key = EventKey::of(pkt, class);
        let tool = classify(pkt);
        match self.active.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let ev = e.get_mut();
                if ev.last.since(pkt.ts) > self.reorder_window {
                    // Older than this event's own reorder window: count
                    // and drop, never merge.
                    self.stats.quarantined += 1;
                    self.m_quarantined.inc();
                    return;
                }
                if pkt.ts.since(ev.last) > self.timeout {
                    // Gap exceeded: close the old event and start fresh.
                    let done = Self::finish(key, e.remove(), self.dark_size);
                    self.completed.push(done);
                    self.m_events_total.inc();
                    self.active.insert(key, Self::fresh(pkt, tool, dst_index, self.dark_size));
                } else {
                    if pkt.ts < ev.last {
                        self.stats.late_accepted += 1;
                    }
                    if pkt.ts < ev.start {
                        ev.start = pkt.ts;
                        self.stats.start_repaired += 1;
                    }
                    ev.last = ev.last.max(pkt.ts);
                    ev.packets += 1;
                    ev.bytes += u64::from(pkt.wire_len);
                    ev.dsts.insert(dst_index);
                    ev.tools.add(tool, 1);
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Self::fresh(pkt, tool, dst_index, self.dark_size));
            }
        }
        self.stats.accepted += 1;
        self.m_accepted.inc();
        self.m_active_hwm.set_max(self.active.len() as i64);
    }

    fn fresh(pkt: &PacketMeta, tool: Tool, dst_index: u32, dark_size: u32) -> ActiveEvent {
        let mut dsts = DstSet::new(dark_size);
        dsts.insert(dst_index);
        let mut tools = ToolCounts::default();
        tools.add(tool, 1);
        ActiveEvent {
            start: pkt.ts,
            last: pkt.ts,
            packets: 1,
            bytes: u64::from(pkt.wire_len),
            dsts,
            tools,
        }
    }

    fn finish(key: EventKey, ev: ActiveEvent, dark_size: u32) -> DarknetEvent {
        DarknetEvent {
            key,
            start: ev.start,
            end: ev.last,
            packets: ev.packets,
            bytes: ev.bytes,
            unique_dsts: ev.dsts.count(),
            dark_size,
            tools: ev.tools,
        }
    }

    /// Expire all events idle past the timeout — plus one extra
    /// `reorder_window` of slack — as of `now`.
    ///
    /// The slack makes timed expiry *content-neutral*: an event is only
    /// closed once every packet that could still legally reach it (per-
    /// key disorder is bounded by `reorder_window`) would exceed the
    /// idle timeout and start a fresh event anyway. Sweeping earlier,
    /// later, or never therefore changes *when* completed events are
    /// drained but never their contents — which is why serial runs and
    /// shards sweeping on independent local clocks agree bitwise.
    pub fn advance(&mut self, now: Ts) {
        self.m_sweeps.inc();
        let _span = self.m_sweep_us.time();
        let _trace = self.tracer.span("ah_telescope_agg_sweep");
        self.last_sweep = now;
        self.watermark = self.watermark.max(now);
        let expire_after = Dur(self.timeout.0 + self.reorder_window.0);
        let dark_size = self.dark_size;
        let expired: Vec<EventKey> = self
            .active
            .iter()
            .filter(|(_, ev)| now.since(ev.last) > expire_after)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            if let Some(ev) = self.active.remove(&key) {
                self.completed.push(Self::finish(key, ev, dark_size));
                self.m_events_total.inc();
            }
        }
    }

    /// Drain events completed so far (ordering follows completion, not
    /// event start).
    pub fn drain_completed(&mut self) -> Vec<DarknetEvent> {
        std::mem::take(&mut self.completed)
    }

    /// Close every remaining active event (end of trace) and drain all.
    pub fn flush(&mut self) -> Vec<DarknetEvent> {
        let dark_size = self.dark_size;
        let mut done = std::mem::take(&mut self.completed);
        for (key, ev) in self.active.drain() {
            done.push(Self::finish(key, ev, dark_size));
            self.m_events_total.inc();
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DARK: u32 = 1 << 16;

    fn syn(ts_secs: u64, src: u32, dst_idx: u32, port: u16) -> (PacketMeta, u32) {
        let p = PacketMeta::tcp_syn(
            Ts::from_secs(ts_secs),
            Ipv4Addr4(0x0a00_0000 + src),
            Ipv4Addr4(0xc000_0000 + dst_idx),
            40000,
            port,
        );
        (p, dst_idx)
    }

    fn agg() -> EventAggregator {
        EventAggregator::new(DARK, Dur::from_mins(10))
    }

    #[test]
    fn one_source_one_event() {
        let mut a = agg();
        for i in 0..100u32 {
            let (p, idx) = syn(u64::from(i), 1, i, 23);
            a.observe(&p, ScanClass::TcpSyn, idx);
        }
        let evs = a.flush();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!(e.packets, 100);
        assert_eq!(e.unique_dsts, 100);
        assert_eq!(e.start, Ts::from_secs(0));
        assert_eq!(e.end, Ts::from_secs(99));
        assert_eq!(e.bytes, 100 * 40);
    }

    #[test]
    fn distinct_ports_are_distinct_events() {
        let mut a = agg();
        for port in [22u16, 23, 6379] {
            let (p, idx) = syn(1, 1, 5, port);
            a.observe(&p, ScanClass::TcpSyn, idx);
        }
        let evs = a.flush();
        assert_eq!(evs.len(), 3);
    }

    #[test]
    fn distinct_classes_are_distinct_events() {
        let mut a = agg();
        let src = Ipv4Addr4::new(10, 0, 0, 1);
        let dst = Ipv4Addr4::new(192, 0, 2, 1);
        let t = PacketMeta::tcp_syn(Ts::from_secs(1), src, dst, 1, 53);
        let u = PacketMeta::udp_probe(Ts::from_secs(1), src, dst, 1, 53);
        a.observe(&t, ScanClass::TcpSyn, 0);
        a.observe(&u, ScanClass::Udp, 0);
        assert_eq!(a.flush().len(), 2);
    }

    #[test]
    fn timeout_splits_events() {
        let mut a = agg();
        let (p1, i1) = syn(0, 1, 0, 23);
        a.observe(&p1, ScanClass::TcpSyn, i1);
        // 601 seconds later: beyond the 600s timeout.
        let (p2, i2) = syn(601, 1, 1, 23);
        a.observe(&p2, ScanClass::TcpSyn, i2);
        let evs = a.flush();
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.packets == 1));
    }

    #[test]
    fn gap_at_exactly_timeout_does_not_split() {
        let mut a = agg();
        let (p1, i1) = syn(0, 1, 0, 23);
        let (p2, i2) = syn(600, 1, 1, 23);
        a.observe(&p1, ScanClass::TcpSyn, i1);
        a.observe(&p2, ScanClass::TcpSyn, i2);
        let evs = a.flush();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].packets, 2);
    }

    #[test]
    fn advance_expires_idle_events() {
        let mut a = agg();
        let (p, i) = syn(0, 1, 0, 23);
        a.observe(&p, ScanClass::TcpSyn, i);
        assert_eq!(a.active_count(), 1);
        // Timed expiry carries reorder-window slack: timeout (600s) plus
        // window (300s) must elapse before a sweep closes the event.
        a.advance(Ts::from_secs(601));
        assert_eq!(a.active_count(), 1, "within the slack: not yet expired");
        a.advance(Ts::from_secs(901));
        assert_eq!(a.active_count(), 0);
        assert_eq!(a.drain_completed().len(), 1);
    }

    #[test]
    fn repeated_dst_counts_once() {
        let mut a = agg();
        for t in 0..5 {
            let (p, i) = syn(t, 1, 7, 23);
            a.observe(&p, ScanClass::TcpSyn, i);
        }
        let evs = a.flush();
        assert_eq!(evs[0].packets, 5);
        assert_eq!(evs[0].unique_dsts, 1);
    }

    #[test]
    fn dispersion_fraction() {
        let mut a = EventAggregator::new(1000, Dur::from_mins(10));
        for i in 0..100u32 {
            let (p, _) = syn(0, 1, i, 23);
            a.observe(&p, ScanClass::TcpSyn, i);
        }
        let evs = a.flush();
        assert!((evs[0].dispersion() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tool_attribution_counted() {
        let mut a = agg();
        let (mut p, i) = syn(0, 1, 0, 23);
        p.ip_id = ah_net::fingerprint::ZMAP_IP_ID;
        a.observe(&p, ScanClass::TcpSyn, i);
        let (p2, i2) = syn(1, 1, 1, 23);
        a.observe(&p2, ScanClass::TcpSyn, i2);
        let evs = a.flush();
        assert_eq!(evs[0].tools.zmap, 1);
        assert_eq!(evs[0].tools.total(), 2);
        assert_eq!(evs[0].tools.dominant(), Tool::ZMap);
    }

    #[test]
    fn implicit_sweep_bounds_active_map() {
        // Sources that appear once and go silent must be evicted by the
        // implicit sweep as time advances, even without explicit advance().
        let mut a = agg();
        for s in 0..1000u32 {
            let (p, i) = syn(u64::from(s) * 10, s, 0, 23);
            a.observe(&p, ScanClass::TcpSyn, i);
        }
        // By t=9990s, sources idle past timeout + reorder_window (900s)
        // at the last implicit sweep are expired; only the most recent
        // ~100s of sources (plus one sweep period of drift) survive.
        assert!(a.active_count() < 150, "active map not swept: {}", a.active_count());
    }

    #[test]
    fn late_packet_within_window_repairs_event_start() {
        // Default reorder window is timeout/2 = 300s.
        let mut a = agg();
        let (p1, i1) = syn(100, 1, 0, 23);
        a.observe(&p1, ScanClass::TcpSyn, i1);
        let (p2, i2) = syn(50, 1, 1, 23); // 50s behind the event's newest ts
        a.observe(&p2, ScanClass::TcpSyn, i2);
        let stats = a.stats();
        assert_eq!(stats.late_accepted, 1);
        assert_eq!(stats.start_repaired, 1);
        assert_eq!(stats.quarantined, 0);
        let evs = a.flush();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].start, Ts::from_secs(50));
        assert_eq!(evs[0].end, Ts::from_secs(100));
        assert_eq!(evs[0].packets, 2);
    }

    #[test]
    fn packet_beyond_reorder_window_is_quarantined() {
        let mut a = agg();
        let (p1, i1) = syn(1000, 1, 0, 23);
        a.observe(&p1, ScanClass::TcpSyn, i1);
        let (p2, i2) = syn(100, 1, 1, 23); // 900s late > 300s window
        a.observe(&p2, ScanClass::TcpSyn, i2);
        let stats = a.stats();
        assert_eq!(stats.received, 2);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.received, stats.accepted + stats.quarantined);
        let evs = a.flush();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].packets, 1);
        assert_eq!(evs[0].start, Ts::from_secs(1000));
    }

    #[test]
    fn custom_reorder_window_is_honored() {
        let mut a =
            EventAggregator::with_reorder_window(DARK, Dur::from_mins(10), Dur::from_secs(10));
        let (p1, i1) = syn(100, 1, 0, 23);
        let (p2, i2) = syn(85, 1, 1, 23); // 15s late > 10s window
        a.observe(&p1, ScanClass::TcpSyn, i1);
        a.observe(&p2, ScanClass::TcpSyn, i2);
        assert_eq!(a.stats().quarantined, 1);
    }

    #[test]
    fn stats_conserve_over_mixed_stream() {
        let mut a = agg();
        // In-order, slightly late, and wildly late packets interleaved.
        let times = [0u64, 10, 5, 20, 700, 650, 10, 705];
        for (k, t) in times.iter().enumerate() {
            let (p, i) = syn(*t, 1, k as u32, 23);
            a.observe(&p, ScanClass::TcpSyn, i);
        }
        let s = a.stats();
        assert_eq!(s.received, times.len() as u64);
        assert_eq!(s.received, s.accepted + s.quarantined);
        assert!(s.quarantined >= 1); // the t=10 packet 690s behind its event's last (700)
        assert!(s.late_accepted >= 2);
        let total_pkts: u64 = a.flush().iter().map(|e| e.packets).sum();
        assert_eq!(total_pkts, s.accepted);
    }

    #[test]
    fn tool_counts_merge_and_dominant_empty() {
        let mut a = ToolCounts::default();
        assert_eq!(a.dominant(), Tool::Other);
        let mut b = ToolCounts::default();
        b.add(Tool::Masscan, 3);
        b.add(Tool::Other, 1);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.dominant(), Tool::Masscan);
    }

    #[test]
    fn event_day_helpers() {
        let e = DarknetEvent {
            key: EventKey {
                src: Ipv4Addr4::new(1, 1, 1, 1),
                dst_port: 23,
                class: ScanClass::TcpSyn,
            },
            start: Ts::from_days(2) + Dur::from_secs(100),
            end: Ts::from_days(4) + Dur::from_secs(5),
            packets: 1,
            bytes: 40,
            unique_dsts: 1,
            dark_size: 100,
            tools: ToolCounts::default(),
        };
        assert_eq!(e.start_day(), 2);
        assert_eq!(e.days().collect::<Vec<_>>(), vec![2, 3, 4]);
    }
}
